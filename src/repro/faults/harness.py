"""Crash harness: randomized kill/recover cycles asserting durability.

The harness drives a deterministic workload against an engine on a
:class:`~repro.faults.device.FaultyBlockDevice`, schedules a randomized
named crash point each cycle, lets the injected :class:`SimulatedCrashError`
kill the engine mid-operation, reopens from the surviving device (manifest +
WAL replay), and checks the durability contract:

* **zero loss of acknowledged writes** — every ``put``/``delete`` that
  returned to the caller before the crash reads back exactly;
* **no resurrected deletes** — an acknowledged tombstone never reappears,
  not even with its pre-delete value;
* **old-or-new for in-flight writes** — the operation (or group-commit
  batch) that was racing the crash may land fully or not at all, but each
  affected key must read as either its previous acknowledged state or the
  in-flight one — never garbage, never a third value.

Four modes exercise the deployment shapes: ``tree`` (single-threaded
:class:`~repro.core.lsm_tree.LSMTree`), ``service`` (concurrent
:class:`~repro.service.DBService` with group commit and background
maintenance), ``sharded`` (:class:`~repro.sharding.ShardedStore` over a
shared device), and ``txn`` (bank transfers through optimistic
:class:`~repro.txn.Transaction` commits against a service — checking, on
top of the durability contract, that no transaction is ever torn: a
transfer's two account writes land together or not at all, and the total
balance is conserved across every crash). Run it from the command line for
the CI crash matrix::

    PYTHONPATH=src python -m repro.faults.harness --cycles 50 --seed 1

Fail-stop caveat (service mode): when the crash fires on a background
worker, in-flight jobs on *other* workers are allowed to complete before
recovery. That only ever makes more acknowledged data durable — it is
equivalent to the crash having struck a moment later — so the contract
checked here is unchanged.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.encoding import encode_uint_key
from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree
from repro.errors import SimulatedCrashError
from repro.faults.config import CRASH_POINTS, FaultConfig
from repro.faults.device import FaultyBlockDevice
from repro.faults.guard import ReadGuard
from repro.storage.block_device import LatencyModel
from repro.storage.compression import available_codecs

#: How many times each hook may fire before the scheduled crash triggers.
#: Frequent hooks get a wide window so the crash lands at a varied depth;
#: rare hooks get a narrow one so they actually fire within a cycle.
_POINT_BUDGET = {
    "wal_sync": 24,
    "device_append": 48,
    "wal_roll": 3,
    "flush_build": 3,
    "flush_install": 3,
    "wal_retire": 2,
    "compaction_install": 2,
    "manifest_install": 6,
}

_TOMBSTONE = None  # sentinel in the model: key was deleted (and acked)


@dataclass
class CycleResult:
    """Outcome of one crash/recover cycle."""

    cycle: int
    crash_point: str
    countdown: int
    fired: bool  # did the scheduled crash actually trigger?
    ops_acked: int
    keys_checked: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class HarnessReport:
    """Aggregate over a harness run; ``ok`` is the CI pass/fail bit."""

    cycles: List[CycleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cycle.ok for cycle in self.cycles)

    @property
    def crashes_fired(self) -> int:
        return sum(1 for c in self.cycles if c.fired)

    @property
    def violations(self) -> List[str]:
        return [v for c in self.cycles for v in c.violations]

    def summary(self) -> str:
        return (
            f"{len(self.cycles)} cycles, {self.crashes_fired} crashes fired, "
            f"{sum(c.ops_acked for c in self.cycles)} acked ops, "
            f"{len(self.violations)} violations"
        )


class CrashHarness:
    """Drive workload → crash → recover → verify cycles on one device.

    State accumulates across cycles: each cycle continues the workload on
    the device that survived the previous crash, so late cycles exercise
    recovery over multi-level trees with real compaction history.

    Args:
        config: tree configuration (``wal_enabled`` is forced on).
        faults: fault probabilities; the harness drives ``crash_points``
            itself, so any passed in are ignored.
        mode: ``tree``, ``service``, ``sharded``, or ``txn``.
        seed: master seed; every random choice in the harness derives from
            it, so a failing run replays exactly.
        ops_per_cycle: workload operations attempted per cycle.
        keyspace: distinct keys (collisions create overwrite/delete churn).
        value_bytes: payload size per put.
        delete_fraction: fraction of operations that are deletes.
        crash_points: the crash-point vocabulary to draw from.
        num_shards: shard count in ``sharded`` mode.
        parallel: run compactions as key-range subcompactions (a small
            :class:`~repro.parallel.ParallelConfig` tuned so the harness's
            tiny trees actually split), so crashes land inside parallel
            merges and during multi-file installs.
    """

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        faults: Optional[FaultConfig] = None,
        mode: str = "tree",
        seed: int = 0,
        ops_per_cycle: int = 300,
        keyspace: int = 400,
        value_bytes: int = 48,
        delete_fraction: float = 0.1,
        crash_points: Tuple[str, ...] = CRASH_POINTS,
        num_shards: int = 3,
        parallel: bool = False,
    ) -> None:
        if mode not in ("tree", "service", "sharded", "txn"):
            raise ValueError(f"unknown harness mode {mode!r}")
        if config is None:
            config = LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=3, seed=seed
            )
        if not config.wal_enabled or config.wal_sync_interval != 1:
            config = config.replace(wal_enabled=True, wal_sync_interval=1)
        if parallel and config.parallel is None:
            from repro.parallel import ParallelConfig

            config = config.replace(
                parallel=ParallelConfig(
                    max_subcompactions=3, min_subcompaction_blocks=2
                )
            )
        self.config = config
        self.faults = faults or FaultConfig(seed=seed)
        self.mode = mode
        self.rng = random.Random(seed)
        self.ops_per_cycle = ops_per_cycle
        self.keyspace = keyspace
        self.value_bytes = value_bytes
        self.delete_fraction = delete_fraction
        self.crash_points = tuple(crash_points)
        self.num_shards = num_shards
        self._boundaries = self._shard_boundaries() if mode == "sharded" else None
        self.device = FaultyBlockDevice(
            block_size=config.block_size,
            latency=None,
            faults=self.faults.replace(crash_points={}),
            armed=False,
        )
        self.device.guard = ReadGuard.from_config(self.faults)
        # The model: acknowledged state per key (None = acked tombstone),
        # plus the keys whose last write was in flight when the crash hit.
        self.acked: Dict[bytes, Optional[bytes]] = {}
        self._op_counter = 0
        # txn mode: committed balance per account, and the invariant total.
        self.balances: Dict[bytes, int] = {}
        self._txn_accounts = min(self.keyspace, 128)
        self._txn_initial = 1_000
        self._txn_total = self._txn_accounts * self._txn_initial

    # -- engine lifecycle ----------------------------------------------------

    def _shard_boundaries(self) -> List[bytes]:
        from repro.sharding import even_boundaries

        return even_boundaries(self.keyspace, self.num_shards)

    def _open(self, first: bool):
        """Open (first cycle) or recover (after a crash) the engine."""
        if self.mode == "sharded":
            from repro.sharding import ShardedStore

            if first:
                return ShardedStore(self.config, self._boundaries, device=self.device)
            return ShardedStore.recover(self.config, self._boundaries, self.device)
        if first:
            tree = LSMTree(self.config, device=self.device)
        else:
            tree = LSMTree.recover(self.config, self.device)
        if self.mode in ("service", "txn"):
            from repro.service import DBService, ServiceConfig

            return DBService(
                tree, config=ServiceConfig(max_batch_wait_s=0.0005), close_tree=True
            )
        return tree

    def _abandon(self, engine) -> None:
        """Fail-stop: drop the engine without any orderly shutdown."""
        if self.mode in ("service", "txn"):
            # Stop the worker pool so no background job races recovery on
            # the shared device; in-flight jobs may finish (see module doc).
            engine.scheduler.close(drain=False)
            engine.tree.set_maintenance_callback(None)

    # -- workload ------------------------------------------------------------

    def _next_op(self) -> Tuple[bytes, Optional[bytes]]:
        self._op_counter += 1
        key = encode_uint_key(self.rng.randrange(self.keyspace))
        if self.rng.random() < self.delete_fraction:
            return key, _TOMBSTONE
        value = (b"op%08d:" % self._op_counter) + b"x" * self.value_bytes
        return key, value

    def _apply(self, engine, key: bytes, value: Optional[bytes]) -> None:
        if value is _TOMBSTONE:
            engine.delete(key)
        else:
            engine.put(key, value)

    def _crashed_in_background(self, engine) -> bool:
        return self.mode in ("service", "txn") and isinstance(
            engine.scheduler.last_job_error, SimulatedCrashError
        )

    # -- verification --------------------------------------------------------

    def _verify(self, engine, pending: Dict[bytes, Optional[bytes]], result: CycleResult) -> None:
        for key, expected in sorted(self.acked.items()):
            result.keys_checked += 1
            got = engine.get(key)
            if key in pending:
                new = pending[key]
                old_ok = (got.found and got.value == expected) if expected is not None else not got.found
                new_ok = (got.found and got.value == new) if new is not None else not got.found
                if not (old_ok or new_ok):
                    result.violations.append(
                        f"key {key.hex()}: in-flight write read back as neither "
                        f"old nor new state (found={got.found})"
                    )
                continue
            if expected is _TOMBSTONE:
                if got.found:
                    result.violations.append(
                        f"key {key.hex()}: acknowledged delete resurrected "
                        f"(value {got.value[:16]!r}...)"
                    )
            elif not got.found:
                result.violations.append(f"key {key.hex()}: acknowledged write lost")
            elif got.value != expected:
                result.violations.append(
                    f"key {key.hex()}: acknowledged write read back wrong "
                    f"({got.value[:16]!r}... != {expected[:16]!r}...)"
                )
        for key, new in pending.items():
            if key in self.acked:
                continue  # checked above against old state
            result.keys_checked += 1
            got = engine.get(key)
            new_ok = (got.found and got.value == new) if new is not None else not got.found
            if got.found and not new_ok:
                result.violations.append(
                    f"key {key.hex()}: never-acked key read back garbage"
                )

    # -- transactional workload (txn mode) -----------------------------------

    def _txn_key(self, index: int) -> bytes:
        return b"acct:" + encode_uint_key(index)

    def _txn_init(self, engine) -> None:
        """Fund every account in one atomic batch (before any crash arms)."""
        ops = []
        for i in range(self._txn_accounts):
            key = self._txn_key(i)
            self.balances[key] = self._txn_initial
            ops.append(("put", key, b"%d" % self._txn_initial))
        engine.write(ops)

    def _txn_cycle(self, engine, result: CycleResult) -> Dict[bytes, Tuple[int, int]]:
        """Run transfers until the cycle ends or the crash fires.

        Returns the in-flight transfer as ``{key: (old, new)}`` (empty when
        the crash hit between commits or on a background worker).
        """
        from repro.errors import ConflictError
        from repro.txn import Transaction

        pending: Dict[bytes, Tuple[int, int]] = {}
        try:
            for _ in range(self.ops_per_cycle):
                i = self.rng.randrange(self._txn_accounts)
                j = self.rng.randrange(self._txn_accounts - 1)
                if j >= i:
                    j += 1
                a, b = self._txn_key(i), self._txn_key(j)
                amount = self.rng.randint(1, 25)
                old_a, old_b = self.balances[a], self.balances[b]
                new_a, new_b = old_a - amount, old_b + amount
                pending = {a: (old_a, new_a), b: (old_b, new_b)}
                txn = Transaction(engine)
                try:
                    read_a, read_b = txn.get(a), txn.get(b)
                    if int(read_a.value) != old_a or int(read_b.value) != old_b:
                        result.violations.append(
                            f"txn read drift: {a.hex()}={read_a.value!r} "
                            f"{b.hex()}={read_b.value!r} disagree with the "
                            f"committed model"
                        )
                    txn.put(a, b"%d" % new_a)
                    txn.put(b, b"%d" % new_b)
                    txn.commit()
                except ConflictError:
                    # Benign under this single-writer harness (e.g. a purge
                    # erased a fingerprinted tombstone); nothing applied.
                    pending = {}
                    continue
                self.balances[a], self.balances[b] = new_a, new_b
                pending = {}
                result.ops_acked += 1
                if self._crashed_in_background(engine):
                    result.fired = True
                    break
        except SimulatedCrashError:
            result.fired = True
        return pending

    def _verify_txn(
        self,
        engine,
        pending: Dict[bytes, Tuple[int, int]],
        result: CycleResult,
    ) -> None:
        """No lost commits, no torn transfers, total balance conserved."""
        survived: Dict[bytes, int] = {}
        for key in sorted(self.balances):
            result.keys_checked += 1
            got = engine.get(key)
            if not got.found:
                result.violations.append(
                    f"account {key.hex()}: balance lost after recovery"
                )
                continue
            survived[key] = int(got.value)
        states = []
        for key, (old, new) in sorted(pending.items()):
            balance = survived.get(key)
            if balance == old:
                states.append("old")
            elif balance == new:
                states.append("new")
            else:
                states.append("garbage")
                result.violations.append(
                    f"account {key.hex()}: {balance!r} is neither the pre- "
                    f"({old}) nor post-transfer ({new}) balance"
                )
        if "old" in states and "new" in states:
            result.violations.append(
                "torn transaction: one account of the in-flight transfer "
                "committed without the other"
            )
        for key, balance in survived.items():
            if key in pending:
                continue
            if balance != self.balances[key]:
                result.violations.append(
                    f"account {key.hex()}: committed balance "
                    f"{self.balances[key]} read back as {balance}"
                )
        if survived and sum(survived.values()) != self._txn_total:
            result.violations.append(
                f"conservation violated: total {sum(survived.values())} != "
                f"{self._txn_total}"
            )
        for key, (_, _) in pending.items():
            if key in survived:
                self.balances[key] = survived[key]

    # -- the cycle -----------------------------------------------------------

    def run_cycle(self, cycle_no: int, first: bool) -> CycleResult:
        point = self.crash_points[self.rng.randrange(len(self.crash_points))]
        countdown = self.rng.randint(1, _POINT_BUDGET.get(point, 4))
        result = CycleResult(
            cycle=cycle_no, crash_point=point, countdown=countdown,
            fired=False, ops_acked=0, keys_checked=0,
        )

        engine = self._open(first)
        if self.mode == "txn" and first:
            self._txn_init(engine)
        self.device.schedule_crash(point, countdown)
        self.device.arm()

        pending: Dict[bytes, Optional[bytes]] = {}
        txn_pending: Dict[bytes, Tuple[int, int]] = {}
        batch: Dict[bytes, Optional[bytes]] = {}
        try:
            if self.mode == "txn":
                txn_pending = self._txn_cycle(engine, result)
            else:
                for _ in range(self.ops_per_cycle):
                    key, value = self._next_op()
                    batch = {key: value}
                    self._apply(engine, key, value)
                    self.acked[key] = value
                    result.ops_acked += 1
                    if self._crashed_in_background(engine):
                        result.fired = True
                        break
        except SimulatedCrashError:
            result.fired = True
            pending = dict(batch)
        finally:
            self.device.disarm()
            self._abandon(engine)

        recovered = self._open(first=False)
        if self.mode == "txn":
            self._verify_txn(recovered, txn_pending, result)
        else:
            self._verify(recovered, pending, result)
            # Resolve in-flight keys to what actually survived, so the next
            # cycle's model matches the device.
            for key in pending:
                got = recovered.get(key)
                self.acked[key] = got.value if got.found else _TOMBSTONE
        if self.mode in ("service", "sharded", "txn"):
            recovered.close()
        # tree mode: leave the tree's durable state; the object is dropped
        # and the next cycle recovers from the device again.
        return result

    def run(self, cycles: int) -> HarnessReport:
        report = HarnessReport()
        for cycle_no in range(cycles):
            report.cycles.append(self.run_cycle(cycle_no, first=(cycle_no == 0)))
        return report


# -- crash-matrix CLI --------------------------------------------------------

_LATENCY_MODELS = {
    "flat": None,  # device default
    "skewed": dict(sequential_read=1.0, random_read=8.0,
                   sequential_write=2.0, random_write=12.0),
}


def run_matrix(
    seeds: List[int],
    cycles: int,
    modes: List[str],
    layouts: List[str],
    latencies: List[str],
    crash_points: Optional[List[str]] = None,
    parallel: bool = False,
    compression: str = "none",
    verbose: bool = False,
) -> Tuple[bool, List[dict]]:
    """The CI crash matrix: seed × mode × layout × latency model.

    Returns:
        ``(ok, failures)`` where each failure dict pins the exact
        configuration and seed needed to replay it.
    """
    failures: List[dict] = []
    points = tuple(crash_points) if crash_points else CRASH_POINTS
    total = 0
    for seed in seeds:
        for mode in modes:
            for layout in layouts:
                for latency_name in latencies:
                    spec = _LATENCY_MODELS[latency_name]
                    latency = LatencyModel(**spec) if spec else None
                    config = LSMConfig(
                        buffer_bytes=4 << 10,
                        block_size=512,
                        size_ratio=3,
                        layout=layout,
                        wal_enabled=True,
                        wal_sync_interval=1,
                        compression=compression,
                        seed=seed,
                    )
                    harness = CrashHarness(
                        config=config,
                        faults=FaultConfig(seed=seed, torn_write_prob=0.5),
                        mode=mode,
                        seed=seed,
                        crash_points=points,
                        parallel=parallel,
                    )
                    harness.device.latency = latency or harness.device.latency
                    report = harness.run(cycles)
                    total += len(report.cycles)
                    if verbose:
                        print(
                            f"seed={seed} mode={mode} layout={layout} "
                            f"latency={latency_name}: {report.summary()}"
                        )
                    if not report.ok:
                        failures.append(
                            {
                                "seed": seed,
                                "mode": mode,
                                "layout": layout,
                                "latency": latency_name,
                                "parallel": parallel,
                                "compression": compression,
                                "violations": report.violations,
                            }
                        )
    if verbose:
        print(f"matrix total: {total} cycles, {len(failures)} failing configs")
    return not failures, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=25, help="cycles per config")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        help="seed(s) for the matrix (repeatable)")
    parser.add_argument("--mode", action="append", default=None,
                        choices=["tree", "service", "sharded", "txn"])
    parser.add_argument("--layout", action="append", default=None,
                        choices=["leveling", "tiering", "lazy_leveling"])
    parser.add_argument("--latency", action="append", default=None,
                        choices=sorted(_LATENCY_MODELS))
    parser.add_argument("--crash-point", action="append", default=None,
                        choices=list(CRASH_POINTS))
    parser.add_argument("--parallel", action="store_true",
                        help="run compactions as key-range subcompactions")
    parser.add_argument("--compression", default="none",
                        choices=sorted(available_codecs()),
                        help="block codec the matrix builds tables with")
    parser.add_argument("--failures-file", default=None,
                        help="write failing configurations here as JSON")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    ok, failures = run_matrix(
        seeds=args.seed or [1, 2],
        cycles=args.cycles,
        modes=args.mode or ["tree"],
        layouts=args.layout or ["leveling"],
        latencies=args.latency or ["flat"],
        crash_points=args.crash_point,
        parallel=args.parallel,
        compression=args.compression,
        verbose=not args.quiet,
    )
    if args.failures_file and failures:
        import json

        with open(args.failures_file, "w") as fh:
            json.dump(failures, fh, indent=2)
    if not ok:
        print(f"FAIL: {len(failures)} configuration(s) violated durability",
              file=sys.stderr)
        for failure in failures:
            print(f"  replay: --seed {failure['seed']} --mode {failure['mode']} "
                  f"--layout {failure['layout']} --latency {failure['latency']} "
                  f"--compression {failure['compression']}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
