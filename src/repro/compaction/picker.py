"""File-picking policies for partial compaction: the data-movement primitive.

When compaction granularity is one file at a time (RocksDB, LevelDB,
X-Engine), *which* file gets compacted shapes write amplification, space
reclamation, and tail latency (tutorial §II-A.2; Sarkar et al. VLDB 2021).
Each picker maps (victim level's files, next level's files) to one victim.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.storage.sstable import SSTable


class FilePicker(abc.ABC):
    """Chooses the file a partial compaction will move down."""

    name = "abstract"

    @abc.abstractmethod
    def pick(
        self, level_tables: Sequence[SSTable], next_level_tables: Sequence[SSTable]
    ) -> SSTable:
        """Return the victim file; ``level_tables`` is never empty."""


class RoundRobinPicker(FilePicker):
    """Cycle through the key space (LevelDB's policy): predictable, fair."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor: Optional[bytes] = None

    def pick(self, level_tables, next_level_tables) -> SSTable:
        ordered = sorted(level_tables, key=lambda table: table.min_key)
        if self._cursor is not None:
            for table in ordered:
                if table.min_key > self._cursor:
                    self._cursor = table.min_key
                    return table
        self._cursor = ordered[0].min_key
        return ordered[0]


class LeastOverlapPicker(FilePicker):
    """Minimize rewritten bytes: pick the file overlapping the least data below.

    This is the write-amplification-optimal greedy choice and the policy
    RocksDB's ``kMinOverlappingRatio`` approximates.
    """

    name = "least_overlap"

    def pick(self, level_tables, next_level_tables) -> SSTable:
        def overlap_bytes(table: SSTable) -> int:
            return sum(
                other.size_bytes
                for other in next_level_tables
                if other.overlaps(table.min_key, table.max_key)
            )

        return min(level_tables, key=lambda table: (overlap_bytes(table), table.min_key))


class ColdestPicker(FilePicker):
    """Pick the least-accessed file, keeping hot files (and their cached
    blocks and filter heat) in place — a tail-latency-friendly choice."""

    name = "coldest"

    def pick(self, level_tables, next_level_tables) -> SSTable:
        return min(level_tables, key=lambda table: (table.hotness, table.min_key))


class MostTombstonesPicker(FilePicker):
    """Pick the file with the highest tombstone density (Lethe-style),
    accelerating space reclamation and delete persistence."""

    name = "most_tombstones"

    def pick(self, level_tables, next_level_tables) -> SSTable:
        def density(table: SSTable) -> float:
            return table.tombstone_count / max(1, table.entry_count)

        return max(level_tables, key=lambda table: (density(table), table.min_key))


class OldestPicker(FilePicker):
    """Pick the file that has sat in the level longest (smallest file id),
    bounding how stale any entry can get."""

    name = "oldest"

    def pick(self, level_tables, next_level_tables) -> SSTable:
        return min(level_tables, key=lambda table: table.file_id)


PICKERS = {
    cls.name: cls
    for cls in (
        RoundRobinPicker,
        LeastOverlapPicker,
        ColdestPicker,
        MostTombstonesPicker,
        OldestPicker,
    )
}


def make_picker(name: str) -> FilePicker:
    """Instantiate a picker by registry name."""
    try:
        return PICKERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown picker {name!r}; expected one of {sorted(PICKERS)}"
        ) from None
