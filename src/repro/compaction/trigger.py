"""Compaction triggers: the *when* primitive.

A trigger inspects a level's observable state and decides whether the engine
should compact it now. The two production staples are provided — run-count
(tiering-style) and size saturation (leveling/RocksDB-style) — plus a
composite that fires when any child fires, which is what the default engine
uses (run bound from the layout policy AND byte capacity from the size ratio).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class LevelState:
    """What a trigger may look at: one level's aggregate state.

    ``oldest_run_age`` counts flushes since the level's oldest run was
    written — the staleness clock (the engine has no wall time).
    """

    level: int
    num_runs: int
    size_bytes: int
    capacity_bytes: int
    max_runs: int
    is_last: bool
    oldest_run_age: int = 0


class CompactionTrigger(abc.ABC):
    """Decides whether a level needs compaction."""

    @abc.abstractmethod
    def should_compact(self, state: LevelState) -> bool:
        """True when the level should be compacted now."""


class RunCountTrigger(CompactionTrigger):
    """Fire when a level exceeds its layout-policy run bound."""

    def should_compact(self, state: LevelState) -> bool:
        return state.num_runs > state.max_runs


class SaturationTrigger(CompactionTrigger):
    """Fire when a level's bytes exceed ``threshold`` of its capacity."""

    def __init__(self, threshold: float = 1.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self._threshold = threshold

    def should_compact(self, state: LevelState) -> bool:
        return state.size_bytes > self._threshold * state.capacity_bytes


class StalenessTrigger(CompactionTrigger):
    """Fire when a level's oldest run has sat for > ``max_age`` flushes.

    The timer/staleness option of Sarkar et al.'s trigger primitive: bounds
    how long any entry can linger un-merged (and thus how long a delete can
    take to persist — the Lethe motivation), independent of fill state.
    Never fires for a single-run last level, where a rewrite would churn the
    full data set for no structural benefit.
    """

    def __init__(self, max_age: int) -> None:
        if max_age < 1:
            raise ValueError("max_age must be at least 1")
        self._max_age = max_age

    def should_compact(self, state: LevelState) -> bool:
        if state.is_last and state.num_runs <= 1:
            return False
        return state.oldest_run_age > self._max_age


class CompositeTrigger(CompactionTrigger):
    """Fire when any child trigger fires."""

    def __init__(self, *triggers: CompactionTrigger) -> None:
        if not triggers:
            raise ValueError("composite trigger needs at least one child")
        self._triggers = triggers

    def should_compact(self, state: LevelState) -> bool:
        return any(trigger.should_compact(state) for trigger in self._triggers)
