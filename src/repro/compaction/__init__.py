"""The compaction design space, decomposed into first-order primitives.

Following Sarkar et al. (VLDB 2021) — cited by the tutorial as the compaction
design space — a compaction policy is the combination of four independent
primitives:

1. **data layout** (:mod:`~repro.compaction.layout`): how many sorted runs a
   level may hold — leveling, tiering, lazy leveling, or any hybrid (K, Z);
2. **trigger** (:mod:`~repro.compaction.trigger`): when to compact — run
   count, level saturation, or both;
3. **granularity**: whole level vs. one file at a time (an
   :class:`~repro.core.config.LSMConfig` switch interpreted by the engine);
4. **data movement policy** (:mod:`~repro.compaction.picker`): which file a
   partial compaction picks.
"""

from repro.compaction.layout import LayoutPolicy
from repro.compaction.trigger import (
    CompactionTrigger,
    CompositeTrigger,
    RunCountTrigger,
    SaturationTrigger,
)
from repro.compaction.picker import PICKERS, make_picker

__all__ = [
    "LayoutPolicy",
    "CompactionTrigger",
    "RunCountTrigger",
    "SaturationTrigger",
    "CompositeTrigger",
    "PICKERS",
    "make_picker",
]
