"""Data-layout policies: how many runs may pile up at each level.

Parameterized as in Dostoevsky (Dayan & Idreos, SIGMOD 2018): ``K`` bounds the
runs at every level but the last, ``Z`` bounds the last level. The classic
designs are corner points of that (K, Z) space:

* leveling: K = Z = 1 — every arrival merges in place; best reads.
* tiering: K = Z = T - 1 — merge only full levels; best writes.
* lazy leveling: K = T - 1, Z = 1 — tiered shallow levels, leveled last level;
  point reads ~ leveling, writes ~ tiering (the hybrid the tutorial features).
* LSM-bush-style: K grows with level depth for the shallowest levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class LayoutPolicy:
    """Bounds on runs per level.

    Attributes:
        name: human-readable policy name (reported by experiments).
        inner_runs: max runs tolerated at levels 1..L-1 before merging (K).
        last_runs: max runs tolerated at the last level (Z).
        inner_runs_fn: optional per-level override for bush-like layouts;
            receives the level number (1-based) and returns that level's K.
    """

    name: str
    inner_runs: int
    last_runs: int
    inner_runs_fn: Optional[Callable[[int], int]] = None

    def __post_init__(self) -> None:
        if self.inner_runs < 1 or self.last_runs < 1:
            raise ConfigError("run bounds must be at least 1")

    def max_runs(self, level: int, is_last: bool) -> int:
        """Run bound for ``level`` (1-based); merging triggers when exceeded."""
        if is_last:
            return self.last_runs
        if self.inner_runs_fn is not None:
            return max(1, self.inner_runs_fn(level))
        return self.inner_runs

    # -- canonical designs -----------------------------------------------------

    @staticmethod
    def leveling() -> "LayoutPolicy":
        """One run per level: merge on every arrival (read-optimized)."""
        return LayoutPolicy("leveling", inner_runs=1, last_runs=1)

    @staticmethod
    def tiering(size_ratio: int) -> "LayoutPolicy":
        """Up to T-1 runs everywhere: merge full levels only (write-optimized)."""
        if size_ratio < 2:
            raise ConfigError("size_ratio must be at least 2")
        return LayoutPolicy("tiering", inner_runs=size_ratio - 1, last_runs=size_ratio - 1)

    @staticmethod
    def lazy_leveling(size_ratio: int) -> "LayoutPolicy":
        """Tiering at inner levels, leveling at the last (Dostoevsky)."""
        if size_ratio < 2:
            raise ConfigError("size_ratio must be at least 2")
        return LayoutPolicy("lazy_leveling", inner_runs=size_ratio - 1, last_runs=1)

    @staticmethod
    def hybrid(inner_runs: int, last_runs: int) -> "LayoutPolicy":
        """Arbitrary (K, Z) point of the Dostoevsky continuum."""
        return LayoutPolicy(f"hybrid(K={inner_runs},Z={last_runs})", inner_runs, last_runs)

    @staticmethod
    def bush(size_ratio: int, depth: int = 3) -> "LayoutPolicy":
        """LSM-bush-flavoured layout: run bounds shrink with level depth.

        The shallowest level tolerates ``(T-1) * 2^(depth-1)`` runs, halving
        each level down until the plain tiering bound, with a leveled last
        level — capturing LSM-bush's "merge lazily where runs are small".
        """
        if size_ratio < 2:
            raise ConfigError("size_ratio must be at least 2")
        base = size_ratio - 1

        def per_level(level: int) -> int:
            boost = max(0, depth - level)
            return base * (2 ** boost)

        return LayoutPolicy(
            f"bush(T={size_ratio},depth={depth})",
            inner_runs=base,
            last_runs=1,
            inner_runs_fn=per_level,
        )

    @staticmethod
    def by_name(name: str, size_ratio: int) -> "LayoutPolicy":
        """Resolve a policy from its registry name."""
        factories = {
            "leveling": LayoutPolicy.leveling,
            "tiering": lambda: LayoutPolicy.tiering(size_ratio),
            "lazy_leveling": lambda: LayoutPolicy.lazy_leveling(size_ratio),
            "bush": lambda: LayoutPolicy.bush(size_ratio),
        }
        try:
            return factories[name]()
        except KeyError:
            raise ConfigError(
                f"unknown layout {name!r}; expected one of {sorted(factories)}"
            ) from None
