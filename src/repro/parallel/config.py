"""ParallelConfig: the execution-speed knobs of the design space.

The tutorial costs every design decision in I/O counts; this config governs
how fast those I/Os are *executed*: how many key-range subcompactions a
merge is split into, how aggressively merge iterators and scans read ahead,
and whether batched point reads coalesce adjacent blocks. None of these
knobs change any answer the engine returns — only wall-clock time, simulated
time, and seek counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config_base import kwonly_dataclass
from repro.errors import ConfigError


@kwonly_dataclass
@dataclass
class ParallelConfig:
    """Parallelism and I/O-coalescing knobs (all results-invariant).

    Attributes:
        max_subcompactions: upper bound on the key-range partitions one
            compaction job is split into; each partition merges on its own
            worker thread (RocksDB's ``max_subcompactions``). 1 disables
            splitting (the serial merge path).
        min_subcompaction_blocks: an input key-range must span at least this
            many data blocks per subcompaction before a split is worth its
            coordination overhead; small merges stay serial.
        merge_readahead_blocks: blocks fetched per coalesced device request
            by compaction/flush merge iterators (1 disables readahead).
        scan_readahead_blocks: blocks fetched per coalesced device request
            by range-scan iterators (1 disables readahead).
        coalesce_point_reads: batch ``multi_get``'s block loads so adjacent
            candidate blocks in the same file are read with one seek.
        write_buffer_blocks: finished data blocks a merge's output builder
            holds back and appends as one coalesced span (1 disables
            buffering). Essential under parallel subcompactions: without
            it, workers interleaving appends to one shared device turn
            nearly every output block into a random write.
    """

    max_subcompactions: int = 4
    min_subcompaction_blocks: int = 8
    merge_readahead_blocks: int = 8
    scan_readahead_blocks: int = 8
    coalesce_point_reads: bool = True
    write_buffer_blocks: int = 8

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check value ranges; raises ConfigError."""
        if self.max_subcompactions < 1:
            raise ConfigError("max_subcompactions must be at least 1")
        if self.min_subcompaction_blocks < 1:
            raise ConfigError("min_subcompaction_blocks must be at least 1")
        if self.merge_readahead_blocks < 1:
            raise ConfigError("merge_readahead_blocks must be at least 1")
        if self.scan_readahead_blocks < 1:
            raise ConfigError("scan_readahead_blocks must be at least 1")
        if self.write_buffer_blocks < 1:
            raise ConfigError("write_buffer_blocks must be at least 1")

    def replace(self, **changes) -> "ParallelConfig":
        """A copy with some fields changed (convenience for sweeps)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
