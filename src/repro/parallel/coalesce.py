"""Coalesced device I/O: multi-block reads for scans, merges, and batched gets.

The device charges every random access one seek (4x a sequential read in the
default latency model), and a seek is exactly what an iterator pays whenever
another thread's read lands between two of its own. Readers that *know* they
will consume consecutive blocks — merge inputs during compaction, long range
scans, the grouped block list of a ``multi_get`` — buy those seeks back by
fetching spans of blocks with one
:meth:`~repro.storage.block_device.BlockDevice.read_blocks` request: a span
is admitted under a single device lock acquisition and charged one seek plus
sequential transfers no matter how many other readers interleave.

:class:`CoalescingReader` packages that pattern for one table file. It
composes with the block cache — cached blocks are served from memory and
spans split around them — and mirrors the per-block ``ProbeStats``
accounting of the ordinary read path, so experiments see identical logical
block counts whichever path served them.

Fault-injection note: when a read guard is installed on the device
(``device.guard is not None``) callers take the per-block guarded path
instead of this layer; retry and quarantine decisions are per block.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.storage.sstable import DataBlock, ProbeStats, parse_block


class CoalescingReader:
    """Reads one table file's data blocks in coalesced multi-block spans.

    Args:
        device: the block device holding the file.
        file_id: the table's file.
        span: maximum blocks per coalesced device request (>= 1).
        cache: optional :class:`~repro.cache.block_cache.BlockCache`; hits
            are served from memory and freshly loaded blocks are inserted.
        stats: optional :class:`~repro.storage.sstable.ProbeStats` receiving
            the same per-block accounting the ordinary read path records.
        hash_index: build per-block hash indexes on parsed blocks (matches
            the owning table's configuration).
    """

    __slots__ = ("_device", "_file_id", "_span", "_cache", "_stats", "_hash_index")

    def __init__(
        self,
        device,
        file_id: int,
        span: int,
        cache=None,
        stats: Optional[ProbeStats] = None,
        hash_index: bool = False,
    ) -> None:
        if span < 1:
            raise ValueError("span must be >= 1")
        self._device = device
        self._file_id = file_id
        self._span = span
        self._cache = cache
        self._stats = stats
        self._hash_index = hash_index

    # -- streaming (merge iterators, range scans) ----------------------------

    def iter_blocks(self, first_block: int, last_block: int) -> Iterator[DataBlock]:
        """Yield parsed blocks ``first_block..last_block`` in order.

        Uncached stretches are fetched ``span`` blocks at a time; a cached
        block is served from memory and terminates the stretch before it
        (never re-read just to keep a span contiguous).
        """
        cache = self._cache
        block_no = first_block
        while block_no <= last_block:
            if cache is not None:
                cached = cache.get((self._file_id, block_no))
                if cached is not None:
                    self._note(from_cache=True)
                    yield cached
                    block_no += 1
                    continue
                block = self._from_compressed_tier(block_no)
                if block is not None:
                    yield block
                    block_no += 1
                    continue
            end = min(block_no + self._span - 1, last_block)
            if cache is not None:
                probe = block_no + 1
                while probe <= end and not cache.contains((self._file_id, probe)):
                    probe += 1
                end = probe - 1
            for block in self._load_span(block_no, end - block_no + 1):
                yield block
            block_no = end + 1

    # -- batched point loads (multi_get) -------------------------------------

    def load_many(self, block_nos: Sequence[int]) -> Dict[int, DataBlock]:
        """Load an ascending list of distinct block numbers.

        Adjacent requested blocks are grouped into coalesced device requests
        (capped at ``span``); non-adjacent groups each pay their own seek,
        exactly as they would individually.
        """
        out: Dict[int, DataBlock] = {}
        pending: List[int] = []
        for block_no in block_nos:
            if self._cache is not None:
                cached = self._cache.get((self._file_id, block_no))
                if cached is not None:
                    self._note(from_cache=True)
                    out[block_no] = cached
                    continue
                block = self._from_compressed_tier(block_no)
                if block is not None:
                    out[block_no] = block
                    continue
            if pending and (
                block_no != pending[-1] + 1 or len(pending) >= self._span
            ):
                self._drain(pending, out)
            pending.append(block_no)
        if pending:
            self._drain(pending, out)
        return out

    # -- internals -----------------------------------------------------------

    def _drain(self, pending: List[int], out: Dict[int, DataBlock]) -> None:
        first = pending[0]
        for offset, block in enumerate(self._load_span(first, len(pending))):
            out[first + offset] = block
        pending.clear()

    def _from_compressed_tier(self, block_no: int) -> Optional[DataBlock]:
        """Decode a block from the cache's compressed tier, if it is there.

        A hit costs CPU only — no device request — and promotes the decoded
        block into the uncompressed tier so the next touch is free.
        """
        cache = self._cache
        get_compressed = getattr(cache, "get_compressed", None)
        if get_compressed is None:
            return None
        frame = get_compressed((self._file_id, block_no))
        if frame is None:
            return None
        block = DataBlock(parse_block(frame), self._hash_index)
        cache.put((self._file_id, block_no), block, block.charge_bytes)
        self._note(from_cache=True)
        return block

    def _load_span(self, first_block: int, count: int) -> List[DataBlock]:
        payloads = self._device.read_blocks(self._file_id, first_block, count)
        blocks: List[DataBlock] = []
        cache = self._cache
        put_compressed = getattr(cache, "put_compressed", None)
        for offset, payload in enumerate(payloads):
            block = DataBlock(parse_block(payload), self._hash_index)
            self._note(from_cache=False)
            if cache is not None:
                key = (self._file_id, first_block + offset)
                # Charge the decoded size, not the on-disk size: the budget
                # bounds resident memory (see DataBlock.charge_bytes).
                cache.put(key, block, block.charge_bytes)
                if put_compressed is not None:
                    put_compressed(key, payload)
            blocks.append(block)
        return blocks

    def _note(self, from_cache: bool) -> None:
        if self._stats is not None:
            self._stats.blocks_read += 1
            if from_cache:
                self._stats.cache_hits += 1
