"""Key-range subcompactions: one merge job, N disjoint ranges, N workers.

A compaction's inputs are sorted runs, so the merged key space can be cut at
any key into contiguous pieces that merge independently: worker *i* merges
the half-open range ``[boundary_i, boundary_i+1)`` of every input and writes
its own output files. Because the pieces partition the key space, the
concatenation of the per-range outputs (in range order) is exactly the run a
serial merge would have produced, entry for entry — only file/block packing
boundaries may differ at the seams. This is RocksDB's ``max_subcompactions``
mechanism.

Boundaries come from the inputs' fence pointers (:attr:`SSTable.fence_keys`):
every fence key marks one data block, so picking boundaries at equal
fence-count quantiles balances *blocks read* per worker — the unit the
device actually charges — not key counts.

The module is deliberately engine-agnostic: :func:`run_subcompactions` sees
input runs, a builder factory, and the compaction-filter callable. The tree
(:meth:`LSMTree._merge_runs`) stays the only place that touches levels,
pins, stats, or filter registration — all of which remain under its mutex.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.common.entry import Entry
from repro.core.iterator import merge_entries, merge_entry_versions
from repro.errors import SimulatedCrashError
from repro.storage.run import Run
from repro.storage.sstable import SSTable, SSTableBuilder

#: A half-open key range ``[lo, hi)``; None means unbounded on that side.
KeyRange = Tuple[Optional[bytes], Optional[bytes]]


def split_key_ranges(
    inputs: Sequence[Run],
    max_subcompactions: int,
    min_blocks: int,
) -> List[KeyRange]:
    """Cut the merged key space of ``inputs`` into balanced half-open ranges.

    Returns ``[(None, None)]`` (run serially) when splitting is off, the job
    is too small (< 2 * ``min_blocks`` data blocks), or every candidate
    boundary collapses onto the smallest key. Otherwise returns up to
    ``max_subcompactions`` ranges whose boundaries sit at equal quantiles of
    the combined fence-pointer list, so each range covers roughly the same
    number of data blocks.
    """
    serial = [(None, None)]
    if max_subcompactions <= 1:
        return serial
    fences: List[bytes] = []
    for run in inputs:
        for table in run.tables:
            fences.extend(table.fence_keys)
    fences.sort()
    total = len(fences)
    if total < 2 * min_blocks:
        return serial
    pieces = min(max_subcompactions, total // min_blocks)
    if pieces <= 1:
        return serial
    boundaries: List[bytes] = []
    for j in range(1, pieces):
        candidate = fences[(j * total) // pieces]
        if candidate > fences[0] and (not boundaries or candidate > boundaries[-1]):
            boundaries.append(candidate)
    if not boundaries:
        return serial
    ranges: List[KeyRange] = []
    lo: Optional[bytes] = None
    for boundary in boundaries:
        ranges.append((lo, boundary))
        lo = boundary
    ranges.append((lo, None))
    return ranges


class SubcompactionError(RuntimeError):
    """A subcompaction worker failed; all partial outputs were deleted."""


def merge_range(
    inputs: Sequence[Run],
    lo: Optional[bytes],
    hi: Optional[bytes],
    purge: bool,
    readahead: int = 1,
    fold: Optional[Callable[[List[Entry]], Optional[Entry]]] = None,
) -> Iterator[Entry]:
    """Merge one half-open range ``[lo, hi)`` of every input run.

    ``hi`` is passed to the input iterators as an *inclusive* cap (fence
    pruning needs an inclusive bound), and entries whose key equals ``hi``
    are dropped here — they belong to the next range.

    With ``fold`` (the tree's per-key group fold: merge-operand folding, TTL
    reclamation, compaction filter) every key's versions are grouped and
    folded to at most one output entry; groups never straddle a range
    boundary, so per-range folding matches the serial fold exactly. Without
    it the legacy newest-wins pass applies.
    """
    streams = [
        run.iter_entries(start=lo, end=hi, readahead=readahead) for run in inputs
    ]
    if fold is None:
        for entry in merge_entries(streams, drop_tombstones=purge):
            if hi is not None and entry.key >= hi:
                return
            yield entry
        return
    for group in merge_entry_versions(streams):
        if hi is not None and group[0].key >= hi:
            return
        entry = fold(group)
        if entry is not None:
            yield entry


def _build_range(
    inputs: Sequence[Run],
    key_range: KeyRange,
    purge: bool,
    builder_factory: Callable[[], SSTableBuilder],
    file_limit: Optional[int],
    keep: Optional[Callable[[bytes, bytes], bool]],
    readahead: int,
    fold: Optional[Callable[[List[Entry]], Optional[Entry]]] = None,
) -> "tuple[List[SSTable], int]":
    """One worker's job: merge a range into output files.

    Returns ``(tables, filtered_count)``. Mirrors the serial build loop
    (same file-size rollover) but keeps the compaction-filter count local —
    the coordinator folds it into tree stats under the stats lock. When
    ``fold`` is provided it subsumes ``keep`` (pass keep=None) and counts
    its own drops.
    """
    lo, hi = key_range
    tables: List[SSTable] = []
    builder: Optional[SSTableBuilder] = None
    written = 0
    filtered = 0
    try:
        for entry in merge_range(inputs, lo, hi, purge, readahead, fold=fold):
            if keep is not None and not entry.is_tombstone and not keep(entry.key, entry.value):
                filtered += 1
                continue
            if builder is None:
                builder = builder_factory()
                written = 0
            builder.add(entry)
            written += entry.approximate_size
            if file_limit is not None and written >= file_limit:
                tables.append(builder.finish())
                builder = None
        if builder is not None:
            tables.append(builder.finish())
            builder = None
        return tables, filtered
    except SimulatedCrashError:
        # A crash freezes the device as-is: partial outputs stay behind as
        # orphan files, exactly what recovery must cope with. No cleanup.
        raise
    except BaseException:
        if builder is not None:
            builder.abandon()
        for table in tables:
            table.delete()
        raise


def run_subcompactions(
    inputs: Sequence[Run],
    ranges: Sequence[KeyRange],
    purge: bool,
    builder_factory: Callable[[], SSTableBuilder],
    file_limit: Optional[int],
    keep: Optional[Callable[[bytes, bytes], bool]] = None,
    readahead: int = 1,
    executor: Optional[concurrent.futures.Executor] = None,
    fold: Optional[Callable[[List[Entry]], Optional[Entry]]] = None,
) -> "tuple[List[SSTable], int]":
    """Execute a compaction's merge as parallel key-range subcompactions.

    Every range is submitted to ``executor`` (or a private thread pool sized
    to the range count); the returned table list is the per-range outputs
    concatenated in range order — a valid sorted, non-overlapping run.

    Returns ``(tables, filtered_count)``. On any worker failure every output
    file (finished or partial, from every range) is deleted and
    :class:`SubcompactionError` is raised — install never sees a torn
    output set.
    """
    own_pool = executor is None
    pool = executor or concurrent.futures.ThreadPoolExecutor(
        max_workers=len(ranges), thread_name_prefix="subcompact"
    )
    futures = [
        pool.submit(
            _build_range,
            inputs, key_range, purge, builder_factory, file_limit, keep, readahead,
            fold,
        )
        for key_range in ranges
    ]
    try:
        results = []
        failure: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # keep draining: collect survivors
                results.append(None)
                if failure is None:
                    failure = exc
        if failure is not None:
            if isinstance(failure, SimulatedCrashError):
                # Crash semantics: the device is frozen mid-job. Completed
                # ranges' files remain as orphans for recovery to sweep;
                # re-raise the crash itself so harnesses see it unwrapped.
                raise failure
            for result in results:
                if result is not None:
                    for table in result[0]:
                        table.delete()
            raise SubcompactionError(
                f"subcompaction worker failed: {failure!r}"
            ) from failure
        tables: List[SSTable] = []
        filtered = 0
        for range_tables, range_filtered in results:
            tables.extend(range_tables)
            filtered += range_filtered
        return tables, filtered
    finally:
        if own_pool:
            pool.shutdown(wait=True)
