"""repro.parallel: subcompactions, coalesced device I/O, and hot-path speed.

The rest of the repo asks *how many* I/Os a design pays (the tutorial's
currency); this package makes the engine *execute* those I/Os as fast as the
simulated hardware allows:

* :class:`~repro.parallel.config.ParallelConfig` — the knobs, attached to
  ``LSMConfig.parallel``;
* :mod:`~repro.parallel.subcompaction` — key-range parallel compaction
  (plan/execute machinery; install stays in the tree, under its mutex);
* :mod:`~repro.parallel.coalesce` — multi-block coalesced reads for merge
  iterators, range scans, and batched point lookups.

Everything here is results-invariant: any tree produced or read through
these paths returns byte-identical answers to the serial engine.
"""

from repro.parallel.config import ParallelConfig
from repro.parallel.coalesce import CoalescingReader
from repro.parallel.subcompaction import (
    SubcompactionError,
    merge_range,
    run_subcompactions,
    split_key_ranges,
)

__all__ = [
    "ParallelConfig",
    "CoalescingReader",
    "SubcompactionError",
    "merge_range",
    "run_subcompactions",
    "split_key_ranges",
]
