"""Server-side knobs: transport limits, tenancy, admission, drain.

Separate from :class:`~repro.service.config.ServiceConfig` for the same
reason that is separate from :class:`~repro.core.config.LSMConfig`: the
tree's knobs shape the structure, the service's shape threading, and the
server's shape the *wire* — connection limits, frame limits, and the
per-tenant QoS contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.config_base import kwonly_dataclass
from repro.errors import ConfigError
from repro.server.protocol import DEFAULT_MAX_PAYLOAD


@kwonly_dataclass
@dataclass
class ServerConfig:
    """Every knob of the network front end.

    Attributes:
        host: bind address (loopback by default; this is a simulator).
        port: bind port; 0 asks the OS for an ephemeral port (read the
            actual one back from ``LSMServer.address`` after ``start()``).
        max_connections: concurrent client connections admitted; further
            accepts are answered with a ``busy`` error frame and closed.
        max_payload_bytes: per-frame payload ceiling enforced on decode.
        recv_bytes: socket recv chunk size.
        idle_poll_s: how often blocked accepts/recvs wake to check for
            shutdown (bounds drain latency; not a request timeout).
        drain_timeout_s: graceful-shutdown budget — in-flight requests get
            this long to finish before their sockets are force-closed.
        default_tenant: namespace applied when a request carries an empty
            tenant id.
        tenant_ops_per_second: fair-share admission budget per weight-1.0
            tenant (ops/second); None disables admission control.
        tenant_burst_ops: admission bucket capacity (defaults to one
            second of refill).
        tenant_weights: optional per-tenant share multipliers.
        scan_limit_max: server-side clamp on one scan reply's entry count
            (a client asking for more gets ``truncated=True`` replies).
        trace_sampling: root sampling fraction for requests that arrive
            *without* a client trace context; None leaves the attached
            recorder's own rate untouched. A request carrying a context
            inherits the client's decision instead.
        trace_capacity: spans retained when the server creates its own
            recorder (a service-attached recorder is reused as-is).
        slow_op_threshold_s: requests slower than this land in the slow-op
            log with their full stage breakdown, sampled or not; None
            disables the log.
        slow_op_capacity: slow-op records retained.
        stats_interval_s: background time-series scrape interval; 0
            disables the sampler thread (``stats_history`` then serves
            whatever on-demand scrapes produced).
        history_capacity: ring capacity (points per series) of the
            time-series sampler.
        dedup_capacity: completed idempotency-token entries retained by the
            request-dedup table (LRU); 0 disables dedup entirely — retried
            mutations then re-execute, so only idempotent workloads are
            safe to retry.
        overload_in_flight: in-flight request count at which data-plane
            requests are refused with ``overloaded``; None disables
            shedding (health/stats requests are always served).
        brownout_in_flight: in-flight count at which the server enters
            brownout — trace sampling is suppressed and scan limits are
            clamped — before it starts refusing work; None disables.
        brownout_scan_limit: per-scan entry clamp applied during brownout.
        shed_on_backpressure_stop: refuse mutating requests with
            ``overloaded`` while the engine's backpressure controller
            reports ``stop``, instead of blocking handler threads on the
            write gate past client deadlines.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 64
    max_payload_bytes: int = DEFAULT_MAX_PAYLOAD
    recv_bytes: int = 64 << 10
    idle_poll_s: float = 0.05
    drain_timeout_s: float = 5.0
    default_tenant: str = "default"
    tenant_ops_per_second: Optional[float] = None
    tenant_burst_ops: Optional[float] = None
    tenant_weights: Optional[Dict[str, float]] = None
    scan_limit_max: int = 10_000
    trace_sampling: Optional[float] = None
    trace_capacity: int = 512
    slow_op_threshold_s: Optional[float] = 0.25
    slow_op_capacity: int = 128
    stats_interval_s: float = 1.0
    history_capacity: int = 240
    dedup_capacity: int = 4096
    overload_in_flight: Optional[int] = None
    brownout_in_flight: Optional[int] = None
    brownout_scan_limit: int = 256
    shed_on_backpressure_stop: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ConfigError("port must be in [0, 65535]")
        if self.max_connections < 1:
            raise ConfigError("max_connections must be at least 1")
        if self.max_payload_bytes < 1 << 10:
            raise ConfigError("max_payload_bytes must be at least 1 KiB")
        if self.recv_bytes < 1:
            raise ConfigError("recv_bytes must be positive")
        if self.idle_poll_s <= 0:
            raise ConfigError("idle_poll_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ConfigError("drain_timeout_s must be positive")
        if not self.default_tenant:
            raise ConfigError("default_tenant must be non-empty")
        if self.tenant_ops_per_second is not None and self.tenant_ops_per_second <= 0:
            raise ConfigError("tenant_ops_per_second must be positive")
        if self.tenant_burst_ops is not None and self.tenant_burst_ops <= 0:
            raise ConfigError("tenant_burst_ops must be positive")
        for tenant, weight in (self.tenant_weights or {}).items():
            if weight <= 0:
                raise ConfigError(f"tenant {tenant!r} weight must be positive")
        if self.scan_limit_max < 1:
            raise ConfigError("scan_limit_max must be at least 1")
        if self.trace_sampling is not None and not 0.0 <= self.trace_sampling <= 1.0:
            raise ConfigError("trace_sampling must be in [0, 1]")
        if self.trace_capacity < 1:
            raise ConfigError("trace_capacity must be at least 1")
        if self.slow_op_threshold_s is not None and self.slow_op_threshold_s < 0:
            raise ConfigError("slow_op_threshold_s must be non-negative")
        if self.slow_op_capacity < 1:
            raise ConfigError("slow_op_capacity must be at least 1")
        if self.stats_interval_s < 0:
            raise ConfigError("stats_interval_s must be non-negative")
        if self.history_capacity < 1:
            raise ConfigError("history_capacity must be at least 1")
        if self.dedup_capacity < 0:
            raise ConfigError("dedup_capacity must be non-negative")
        if self.overload_in_flight is not None and self.overload_in_flight < 1:
            raise ConfigError("overload_in_flight must be at least 1")
        if self.brownout_in_flight is not None and self.brownout_in_flight < 1:
            raise ConfigError("brownout_in_flight must be at least 1")
        if (
            self.overload_in_flight is not None
            and self.brownout_in_flight is not None
            and self.brownout_in_flight > self.overload_in_flight
        ):
            raise ConfigError(
                "brownout_in_flight must not exceed overload_in_flight"
            )
        if self.brownout_scan_limit < 1:
            raise ConfigError("brownout_scan_limit must be at least 1")
