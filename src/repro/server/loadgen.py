"""A closed-loop, multi-client, multi-tenant load generator.

Extends the :mod:`repro.bench.harness` skeleton across the wire: each
tenant gets N client threads, each with its own TCP connection, driving an
operation stream from a :class:`~repro.workloads.spec.WorkloadSpec` (the
same YCSB-flavoured specs the in-process benchmarks use). Clients are
*closed-loop* — the next operation issues only after the previous response
lands — optionally paced to a target rate, so a tenant's offered load is a
real, bounded quantity rather than an unbounded queue.

Client-observed latency (the full round trip, admission delay included)
flows into ``client_op_wall_seconds`` histograms in a shared
:class:`~repro.observe.MetricsRegistry`, labelled by tenant — the numbers
the E23 isolation benchmark compares.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.observe import MetricsRegistry
from repro.server.client import LSMClient
from repro.server.protocol import ProtocolError, RemoteError
from repro.workloads.spec import OperationMix, WorkloadSpec, uniform_spec


@dataclass
class TenantLoad:
    """One tenant's offered load.

    Attributes:
        tenant: tenant id (namespace) the clients issue requests under.
        clients: concurrent connections (threads) for this tenant.
        ops_per_client: operations each client issues.
        target_ops_per_second: tenant-wide pacing target split evenly
            across clients; None runs each client flat-out (closed loop
            still bounds it at one in-flight request per connection).
        mix: operation mix (put/get/scan/delete fractions).
        keyspace: integer keyspace the spec draws from.
        value_size: payload bytes per put.
        scan_length: keys spanned per scan.
        scan_limit: reply-size cap sent with each scan.
        seed: workload RNG seed (each client derives its own).
        trace_sampling: fraction of this tenant's requests traced end to
            end (client root span + wire-propagated context); 0 disables.
    """

    tenant: str
    clients: int = 1
    ops_per_client: int = 100
    target_ops_per_second: Optional[float] = None
    mix: OperationMix = field(
        default_factory=lambda: OperationMix(put=0.25, get=0.75)
    )
    keyspace: int = 1_000
    value_size: int = 40
    scan_length: int = 16
    scan_limit: int = 64
    seed: int = 7
    trace_sampling: float = 0.0

    def spec_for_client(self, index: int) -> WorkloadSpec:
        return uniform_spec(
            self.keyspace,
            self.mix,
            value_size=self.value_size,
            scan_length=self.scan_length,
            seed=self.seed + 1000 * index,
        )


@dataclass
class TenantRunResult:
    """What one tenant's clients observed."""

    tenant: str
    operations: int = 0
    gets: int = 0
    puts: int = 0
    deletes: int = 0
    scans: int = 0
    found: int = 0
    wall_seconds: float = 0.0
    remote_errors: int = 0
    protocol_errors: int = 0
    errors: List[str] = field(default_factory=list)
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.wall_seconds if self.wall_seconds else 0.0


def run_load(
    host: str,
    port: int,
    tenants: Sequence[TenantLoad],
    registry: Optional[MetricsRegistry] = None,
    timeout_s: float = 30.0,
    trace_recorder=None,
) -> Dict[str, TenantRunResult]:
    """Drive every tenant's clients concurrently; returns per-tenant results.

    All clients start on a shared barrier so tenants contend from the first
    operation. Per-tenant latency percentiles are read back from the shared
    registry's ``client_op_wall_seconds{tenant=...}`` histograms (one series
    per (op, tenant); the reported summary merges a tenant's ops).

    Errors never kill the run: a remote error frame or protocol error is
    counted and the client moves on (reconnecting once on protocol errors,
    whose streams are poisoned by design).

    Pass ``trace_recorder`` to collect the client-side spans of every
    tenant whose load sets ``trace_sampling > 0`` in one shared ring.
    """
    if registry is None:
        registry = MetricsRegistry()
    results = {load.tenant: TenantRunResult(tenant=load.tenant) for load in tenants}
    lock = threading.Lock()
    total_clients = sum(load.clients for load in tenants)
    barrier = threading.Barrier(total_clients + 1)

    def client_worker(load: TenantLoad, index: int) -> None:
        result = results[load.tenant]
        interval = None
        if load.target_ops_per_second is not None:
            interval = load.clients / load.target_ops_per_second
        local = TenantRunResult(tenant=load.tenant)
        client = None
        started = False

        def make_client() -> LSMClient:
            return LSMClient(
                host, port, tenant=load.tenant,
                timeout_s=timeout_s, registry=registry,
                trace_sampling=load.trace_sampling,
                trace_recorder=trace_recorder if load.trace_sampling > 0 else None,
            )

        try:
            client = make_client()
            spec = load.spec_for_client(index)
            barrier.wait()
            started = True
            start = time.monotonic()
            for i, op in enumerate(spec.operations(load.ops_per_client)):
                if interval is not None:
                    next_at = start + i * interval
                    delay = next_at - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                try:
                    if op.kind == "put":
                        client.put(op.key, op.value)
                        local.puts += 1
                    elif op.kind == "get":
                        if client.get(op.key).found:
                            local.found += 1
                        local.gets += 1
                    elif op.kind == "scan":
                        client.scan(op.key, op.end_key, limit=load.scan_limit)
                        local.scans += 1
                    elif op.kind == "delete":
                        client.delete(op.key)
                        local.deletes += 1
                    local.operations += 1
                except RemoteError as exc:
                    local.remote_errors += 1
                    if len(local.errors) < 8:
                        local.errors.append(f"{load.tenant}#{index}: {exc}")
                except ProtocolError as exc:
                    local.protocol_errors += 1
                    if len(local.errors) < 8:
                        local.errors.append(f"{load.tenant}#{index}: {exc!r}")
                    client.close()
                    client = make_client()
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            with lock:
                result.errors.append(f"{load.tenant}#{index}: fatal {exc!r}")
            if not started:
                try:
                    barrier.wait(timeout=1.0)  # never wedge the other clients
                except threading.BrokenBarrierError:
                    pass
        finally:
            if client is not None:
                client.close()
            with lock:
                result.operations += local.operations
                result.gets += local.gets
                result.puts += local.puts
                result.deletes += local.deletes
                result.scans += local.scans
                result.found += local.found
                result.remote_errors += local.remote_errors
                result.protocol_errors += local.protocol_errors
                result.errors.extend(local.errors)

    threads = [
        threading.Thread(
            target=client_worker,
            args=(load, index),
            name=f"loadgen-{load.tenant}-{index}",
        )
        for load in tenants
        for index in range(load.clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    began = time.monotonic()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - began

    for load in tenants:
        result = results[load.tenant]
        result.wall_seconds = wall
        result.latency = tenant_latency_summary(registry, load.tenant)
    return results


def tenant_latency_summary(
    registry: MetricsRegistry, tenant: str
) -> Dict[str, float]:
    """Merge one tenant's per-op latency histograms into one percentile dict."""
    merged = None
    for histogram in registry.histograms():
        if (
            histogram.name == "client_op_wall_seconds"
            and histogram.labels.get("tenant") == tenant
        ):
            if merged is None:
                merged = MetricsRegistry().histogram(
                    "client_op_wall_seconds_merged", min_value=histogram.min_value,
                    growth=histogram.growth,
                )
            merged.merge(histogram)
    if merged is None or merged.count == 0:
        return {}
    summary = merged.percentiles()
    summary["mean"] = merged.mean
    summary["count"] = merged.count
    summary["max"] = merged.max
    return summary
