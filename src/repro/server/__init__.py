"""repro.server — the network front end: wire protocol + multi-tenant QoS.

The in-process engine layers (``repro.service``, ``repro.observe``,
``repro.faults``, ``repro.parallel``) end at a Python API; this package
puts a wire and a QoS contract in front of them:

* :mod:`repro.server.protocol` — the length-prefixed, CRC-checked framed
  binary protocol (get/put/delete/multi_get/scan/batch + ping/stats);
* :class:`LSMServer` — a threaded socket server over a
  :class:`~repro.service.service.DBService` (or
  :class:`~repro.sharding.ShardedStore`), with per-tenant namespaces,
  fair-share admission, ``server_*`` metrics, and graceful drain;
* :class:`LSMClient` — the blocking client mirroring the service surface;
* :mod:`repro.server.loadgen` — a closed-loop multi-tenant load generator
  feeding client-observed latency into ``repro.observe`` histograms.

Quickstart::

    from repro import LSMConfig
    from repro.service import DBService
    from repro.server import LSMClient, LSMServer, ServerConfig

    service = DBService(LSMConfig(wal_enabled=True))
    with LSMServer(service, ServerConfig(tenant_ops_per_second=500)) as server:
        host, port = server.address
        with LSMClient(host, port, tenant="alice") as db:
            db.put(b"k", b"v")
            assert db.get(b"k").value == b"v"
"""

from repro.server.client import LSMClient, RetryPolicy, RETRYABLE_CODES
from repro.server.config import ServerConfig
from repro.server.dedup import DedupTable
from repro.server.loadgen import TenantLoad, TenantRunResult, run_load
from repro.server.overload import OverloadGuard
from repro.server.protocol import (
    BatchRequest,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    GetResponse,
    MergeRequest,
    Message,
    MultiGetRequest,
    MultiGetResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    PutRequest,
    RemoteError,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    ScanRequest,
    ScanResponse,
    StatsRequest,
    StatsResponse,
    TxnCommitRequest,
    decode_frame,
    encode_frame,
)
from repro.server.server import LSMServer
from repro.server.tenancy import (
    FairShareAdmission,
    namespaced_key,
    strip_namespace,
    tenant_boundaries,
    tenant_prefix,
    tenant_range,
    validate_tenant,
)

__all__ = [
    "LSMServer",
    "LSMClient",
    "RetryPolicy",
    "RETRYABLE_CODES",
    "DedupTable",
    "OverloadGuard",
    "ServerConfig",
    "FairShareAdmission",
    "TenantLoad",
    "TenantRunResult",
    "run_load",
    "ProtocolError",
    "RemoteError",
    "Message",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "PingRequest",
    "StatsRequest",
    "GetRequest",
    "PutRequest",
    "DeleteRequest",
    "MultiGetRequest",
    "ScanRequest",
    "BatchRequest",
    "MergeRequest",
    "TxnCommitRequest",
    "PongResponse",
    "StatsResponse",
    "GetResponse",
    "OkResponse",
    "MultiGetResponse",
    "ScanResponse",
    "ErrorResponse",
    "validate_tenant",
    "tenant_prefix",
    "tenant_range",
    "tenant_boundaries",
    "namespaced_key",
    "strip_namespace",
]
