"""The framed binary wire protocol spoken between LSMClient and LSMServer.

Every message travels in one length-prefixed, CRC-checked frame:

====== ===== =========================================================
offset bytes field
====== ===== =========================================================
0      2     magic ``0x4C53`` (``b"LS"``, big-endian)
2      1     protocol version (currently 1)
3      1     message type (see the ``*Request``/``*Response`` classes)
4      4     payload length ``N`` (big-endian u32)
8      N     payload (typed encoding below)
8+N    4     CRC32 over bytes ``[0, 8+N)`` — header *and* payload
====== ===== =========================================================

Payloads reuse the :mod:`repro.common.encoding` conventions: unsigned
LEB128 varints for counts and lengths, varint-length-prefixed byte
strings for keys/values/tenant ids. Floats are fixed 8-byte IEEE-754
big-endian. A decoder rejects (``ProtocolError``) any frame with a bad
magic, unknown version or type, an over-limit length, a CRC mismatch, or
payload bytes left over after the typed decode — so corruption anywhere
in a frame is detected, never silently accepted.

The module is transport-agnostic: :func:`encode_frame` /
:class:`FrameDecoder` work on byte strings; :func:`send_message` /
:func:`recv_message` adapt them to a blocking socket.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.common.encoding import (
    decode_varint,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
)
from repro.errors import ReproError
from repro.observe.tracing import TraceContext

MAGIC = 0x4C53  # b"LS"
VERSION = 1
#: Hard ceiling on a frame's payload; guards the server against a client
#: (or line noise) declaring a multi-gigabyte allocation.
DEFAULT_MAX_PAYLOAD = 8 << 20

_HEADER = struct.Struct(">HBBI")  # magic, version, type, payload length
_CRC = struct.Struct(">I")
_F64 = struct.Struct(">d")
HEADER_SIZE = _HEADER.size
TRAILER_SIZE = _CRC.size


class ProtocolError(ReproError):
    """A frame or payload violated the wire format (corrupt, truncated, unknown)."""


class RemoteError(ReproError):
    """The server answered with an :class:`ErrorResponse` (code + message)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message


# -- payload primitives -------------------------------------------------------


def _put_str(out: bytearray, text: str) -> None:
    put_length_prefixed(out, text.encode("utf-8"))


def _get_str(buf: bytes, offset: int) -> Tuple[str, int]:
    raw, offset = get_length_prefixed(buf, offset)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 in string field: {exc}") from None


def _put_bool(out: bytearray, flag: bool) -> None:
    out.append(1 if flag else 0)


def _get_bool(buf: bytes, offset: int) -> Tuple[bool, int]:
    if offset >= len(buf):
        raise ProtocolError("truncated boolean field")
    byte = buf[offset]
    if byte not in (0, 1):
        raise ProtocolError(f"boolean field holds {byte}, expected 0 or 1")
    return bool(byte), offset + 1


def _put_optional_bytes(out: bytearray, data: Optional[bytes]) -> None:
    _put_bool(out, data is not None)
    if data is not None:
        put_length_prefixed(out, data)


def _get_optional_bytes(buf: bytes, offset: int) -> Tuple[Optional[bytes], int]:
    present, offset = _get_bool(buf, offset)
    if not present:
        return None, offset
    data, offset = get_length_prefixed(buf, offset)
    return bytes(data), offset


def _put_trace(out: bytearray, trace: Optional[TraceContext]) -> None:
    """Optional trailing trace-context block (see :func:`_get_trace`)."""
    if trace is None:
        return
    _put_bool(out, True)
    _put_str(out, trace.trace_id)
    _put_str(out, trace.span_id)
    _put_bool(out, trace.sampled)


def _get_trace(buf: bytes, offset: int) -> Tuple[Optional[TraceContext], int]:
    """Decode the optional trace context at the end of a request payload.

    The block is strictly trailing: a payload that simply ends (the pre-trace
    wire image, or a tracing-unaware client) decodes as no context, while a
    present block is a flag byte + trace_id + parent span_id + sampled flag.
    This keeps every pre-existing frame byte-for-byte valid — the CRC covers
    the block when present, and ``_expect_end`` still rejects trailing junk.
    """
    if offset == len(buf):
        return None, offset
    present, offset = _get_bool(buf, offset)
    if not present:
        return None, offset
    trace_id, offset = _get_str(buf, offset)
    span_id, offset = _get_str(buf, offset)
    sampled, offset = _get_bool(buf, offset)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled), offset


# -- message classes ----------------------------------------------------------

_MESSAGE_TYPES: Dict[int, Type["Message"]] = {}


def _register(cls: Type["Message"]) -> Type["Message"]:
    if cls.TYPE in _MESSAGE_TYPES:  # pragma: no cover - module definition bug
        raise ValueError(f"duplicate message type 0x{cls.TYPE:02x}")
    _MESSAGE_TYPES[cls.TYPE] = cls
    return cls


class Message:
    """Base class: every frame body is one typed, round-trippable message."""

    TYPE = -1

    def encode_payload(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode_payload(cls, buf: bytes) -> "Message":
        raise NotImplementedError


@_register
@dataclass(frozen=True)
class PingRequest(Message):
    """Liveness probe; answered by :class:`PongResponse`."""

    TYPE = 0x01
    tenant: str = ""
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PingRequest":
        tenant, offset = _get_str(buf, 0)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, trace=trace)


@_register
@dataclass(frozen=True)
class StatsRequest(Message):
    """Request the server's JSON stats snapshot (metrics + engine + tenants)."""

    TYPE = 0x02
    tenant: str = ""
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsRequest":
        tenant, offset = _get_str(buf, 0)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, trace=trace)


@_register
@dataclass(frozen=True)
class GetRequest(Message):
    TYPE = 0x03
    tenant: str
    key: bytes
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "GetRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, key=bytes(key), trace=trace)


@_register
@dataclass(frozen=True)
class PutRequest(Message):
    TYPE = 0x04
    tenant: str
    key: bytes
    value: bytes
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        put_length_prefixed(out, self.value)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PutRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        value, offset = get_length_prefixed(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, key=bytes(key), value=bytes(value), trace=trace)


@_register
@dataclass(frozen=True)
class DeleteRequest(Message):
    TYPE = 0x05
    tenant: str
    key: bytes
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "DeleteRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, key=bytes(key), trace=trace)


@_register
@dataclass(frozen=True)
class MultiGetRequest(Message):
    TYPE = 0x06
    tenant: str
    keys: Tuple[bytes, ...] = ()
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(bytes(k) for k in self.keys))

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(len(self.keys)))
        for key in self.keys:
            put_length_prefixed(out, key)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "MultiGetRequest":
        tenant, offset = _get_str(buf, 0)
        count, offset = decode_varint(buf, offset)
        keys = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            keys.append(bytes(key))
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, keys=tuple(keys), trace=trace)


@_register
@dataclass(frozen=True)
class ScanRequest(Message):
    """Range scan; ``start``/``end`` are inclusive bounds (None = unbounded),
    mirroring :meth:`LSMTree.scan`. ``limit`` caps the reply's entry count
    (the server clamps it to its own ``scan_limit_max``)."""

    TYPE = 0x07
    tenant: str
    start: Optional[bytes] = None
    end: Optional[bytes] = None
    limit: int = 1000
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_optional_bytes(out, self.start)
        _put_optional_bytes(out, self.end)
        out.extend(encode_varint(self.limit))
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ScanRequest":
        tenant, offset = _get_str(buf, 0)
        start, offset = _get_optional_bytes(buf, offset)
        end, offset = _get_optional_bytes(buf, offset)
        limit, offset = decode_varint(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, start=start, end=end, limit=limit, trace=trace)


@_register
@dataclass(frozen=True)
class BatchRequest(Message):
    """Atomically ordered writes: ``ops`` is ``(kind, key, value)`` triples
    with kind ``"put"`` or ``"delete"`` (value ignored for deletes)."""

    TYPE = 0x08
    tenant: str
    ops: Tuple[Tuple[str, bytes, bytes], ...] = ()
    trace: Optional[TraceContext] = None

    _KINDS = ("put", "delete")

    def __post_init__(self) -> None:
        normalized = []
        for kind, key, value in self.ops:
            if kind not in self._KINDS:
                raise ValueError(f"batch op kind must be put|delete, got {kind!r}")
            normalized.append((kind, bytes(key), bytes(value)))
        object.__setattr__(self, "ops", tuple(normalized))

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(len(self.ops)))
        for kind, key, value in self.ops:
            out.append(self._KINDS.index(kind))
            put_length_prefixed(out, key)
            put_length_prefixed(out, value)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "BatchRequest":
        tenant, offset = _get_str(buf, 0)
        count, offset = decode_varint(buf, offset)
        ops = []
        for _ in range(count):
            if offset >= len(buf):
                raise ProtocolError("truncated batch op")
            kind_byte = buf[offset]
            offset += 1
            if kind_byte >= len(cls._KINDS):
                raise ProtocolError(f"unknown batch op kind {kind_byte}")
            key, offset = get_length_prefixed(buf, offset)
            value, offset = get_length_prefixed(buf, offset)
            ops.append((cls._KINDS[kind_byte], bytes(key), bytes(value)))
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, ops=tuple(ops), trace=trace)


@_register
@dataclass(frozen=True)
class StatsHistoryRequest(Message):
    """Request the server's time-series history (the sampler's ring buffers).

    ``last_n`` limits each series to its most recent N points (0 = all
    retained points).
    """

    TYPE = 0x09
    tenant: str = ""
    last_n: int = 0
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(self.last_n))
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsHistoryRequest":
        tenant, offset = _get_str(buf, 0)
        last_n, offset = decode_varint(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, last_n=last_n, trace=trace)


@_register
@dataclass(frozen=True)
class PongResponse(Message):
    TYPE = 0x81
    server_uptime_s: float = 0.0
    engine_uptime_s: float = 0.0

    def encode_payload(self) -> bytes:
        return _F64.pack(self.server_uptime_s) + _F64.pack(self.engine_uptime_s)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PongResponse":
        if len(buf) != 2 * _F64.size:
            raise ProtocolError(f"pong payload must be 16 bytes, got {len(buf)}")
        return cls(
            server_uptime_s=_F64.unpack_from(buf, 0)[0],
            engine_uptime_s=_F64.unpack_from(buf, _F64.size)[0],
        )


@_register
@dataclass(frozen=True)
class StatsResponse(Message):
    """The server's stats snapshot as a JSON document (UTF-8)."""

    TYPE = 0x82
    payload_json: str = "{}"

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.payload_json)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsResponse":
        text, offset = _get_str(buf, 0)
        _expect_end(buf, offset)
        return cls(payload_json=text)


@_register
@dataclass(frozen=True)
class GetResponse(Message):
    TYPE = 0x83
    found: bool = False
    value: bytes = b""

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_bool(out, self.found)
        put_length_prefixed(out, self.value)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "GetResponse":
        found, offset = _get_bool(buf, 0)
        value, offset = get_length_prefixed(buf, offset)
        _expect_end(buf, offset)
        return cls(found=found, value=bytes(value))


@_register
@dataclass(frozen=True)
class OkResponse(Message):
    """Acknowledges a write; ``count`` is the records applied (batch size)."""

    TYPE = 0x84
    count: int = 1

    def encode_payload(self) -> bytes:
        return encode_varint(self.count)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "OkResponse":
        count, offset = decode_varint(buf, 0)
        _expect_end(buf, offset)
        return cls(count=count)


@_register
@dataclass(frozen=True)
class MultiGetResponse(Message):
    """Per-key results, in the request's key order: ``(key, found, value)``."""

    TYPE = 0x85
    entries: Tuple[Tuple[bytes, bool, bytes], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "entries",
            tuple((bytes(k), bool(f), bytes(v)) for k, f, v in self.entries),
        )

    def encode_payload(self) -> bytes:
        out = bytearray()
        out.extend(encode_varint(len(self.entries)))
        for key, found, value in self.entries:
            put_length_prefixed(out, key)
            _put_bool(out, found)
            put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "MultiGetResponse":
        count, offset = decode_varint(buf, 0)
        entries = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            found, offset = _get_bool(buf, offset)
            value, offset = get_length_prefixed(buf, offset)
            entries.append((bytes(key), found, bytes(value)))
        _expect_end(buf, offset)
        return cls(entries=tuple(entries))


@_register
@dataclass(frozen=True)
class ScanResponse(Message):
    """Scan results; ``truncated`` signals the limit cut the range short."""

    TYPE = 0x86
    items: Tuple[Tuple[bytes, bytes], ...] = ()
    truncated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "items", tuple((bytes(k), bytes(v)) for k, v in self.items)
        )

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_bool(out, self.truncated)
        out.extend(encode_varint(len(self.items)))
        for key, value in self.items:
            put_length_prefixed(out, key)
            put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ScanResponse":
        truncated, offset = _get_bool(buf, 0)
        count, offset = decode_varint(buf, offset)
        items = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            value, offset = get_length_prefixed(buf, offset)
            items.append((bytes(key), bytes(value)))
        _expect_end(buf, offset)
        return cls(items=tuple(items), truncated=truncated)


@_register
@dataclass(frozen=True)
class ErrorResponse(Message):
    """A failed request. ``code`` is machine-readable (``bad_request``,
    ``throttled``, ``engine``, ``internal``, ``shutting_down``, ``busy``)."""

    TYPE = 0x8F
    code: str = "internal"
    message: str = ""

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.code)
        _put_str(out, self.message)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ErrorResponse":
        code, offset = _get_str(buf, 0)
        message, offset = _get_str(buf, offset)
        _expect_end(buf, offset)
        return cls(code=code, message=message)


@_register
@dataclass(frozen=True)
class StatsHistoryResponse(Message):
    """The sampler's ring-buffer series as a JSON document (UTF-8).

    Shape: ``{"samples": n, "capacity": c, "series": {name: {"kind":
    "cumulative"|"level", "t": [...], "v": [...]}}}`` — the direct rendering
    of :meth:`~repro.observe.TimeSeriesSampler.as_dict`.
    """

    TYPE = 0x87
    payload_json: str = "{}"

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.payload_json)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsHistoryResponse":
        text, offset = _get_str(buf, 0)
        _expect_end(buf, offset)
        return cls(payload_json=text)


REQUEST_TYPES = (
    PingRequest, StatsRequest, GetRequest, PutRequest,
    DeleteRequest, MultiGetRequest, ScanRequest, BatchRequest,
    StatsHistoryRequest,
)
RESPONSE_TYPES = (
    PongResponse, StatsResponse, GetResponse, OkResponse,
    MultiGetResponse, ScanResponse, ErrorResponse, StatsHistoryResponse,
)


def _expect_end(buf: bytes, offset: int) -> None:
    if offset != len(buf):
        raise ProtocolError(
            f"{len(buf) - offset} trailing byte(s) after payload decode"
        )


# -- framing ------------------------------------------------------------------


def encode_frame(message: Message) -> bytes:
    """Serialize one message into a complete CRC-trailed frame."""
    payload = message.encode_payload()
    header = _HEADER.pack(MAGIC, VERSION, message.TYPE, len(payload))
    body = header + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def try_decode_frame(
    buf: bytes, offset: int = 0, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Optional[Tuple[Message, int]]:
    """Decode one frame at ``offset`` if fully buffered.

    Returns:
        ``(message, next_offset)``, or None when more bytes are needed.

    Raises:
        ProtocolError: on a structurally invalid frame (bad magic/version/
            type/length/CRC, or a payload that does not decode exactly).
    """
    available = len(buf) - offset
    if available < HEADER_SIZE:
        return None
    magic, version, msg_type, length = _HEADER.unpack_from(buf, offset)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > max_payload:
        raise ProtocolError(f"frame payload {length} exceeds limit {max_payload}")
    total = HEADER_SIZE + length + TRAILER_SIZE
    if available < total:
        return None
    body_end = offset + HEADER_SIZE + length
    (expected_crc,) = _CRC.unpack_from(buf, body_end)
    actual_crc = zlib.crc32(bytes(buf[offset:body_end])) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise ProtocolError(
            f"frame CRC mismatch (stored 0x{expected_crc:08x}, "
            f"computed 0x{actual_crc:08x})"
        )
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type 0x{msg_type:02x}")
    payload = bytes(buf[offset + HEADER_SIZE : body_end])
    try:
        message = cls.decode_payload(payload)
    except ProtocolError:
        raise
    except (ValueError, struct.error) as exc:
        raise ProtocolError(f"malformed {cls.__name__} payload: {exc}") from None
    return message, offset + total


def decode_frame(
    buf: bytes, offset: int = 0, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Tuple[Message, int]:
    """Like :func:`try_decode_frame` but truncation is an error."""
    decoded = try_decode_frame(buf, offset, max_payload)
    if decoded is None:
        raise ProtocolError("truncated frame")
    return decoded


@dataclass
class FrameDecoder:
    """A streaming frame accumulator for a byte-oriented transport.

    Feed it arbitrary chunks; it returns every newly completed message (and
    also queues them for :meth:`next_message`), keeping the unconsumed tail
    buffered. A :class:`ProtocolError` raised by :meth:`feed` poisons the
    stream (resynchronizing inside a corrupt byte stream is not safe for a
    length-prefixed format).
    """

    max_payload: int = DEFAULT_MAX_PAYLOAD
    _buffer: bytearray = field(default_factory=bytearray)
    _ready: "deque" = field(default_factory=deque)

    def feed(self, data: bytes) -> List[Message]:
        self._buffer.extend(data)
        messages: List[Message] = []
        offset = 0
        while True:
            decoded = try_decode_frame(self._buffer, offset, self.max_payload)
            if decoded is None:
                break
            message, offset = decoded
            messages.append(message)
        if offset:
            del self._buffer[:offset]
        self._ready.extend(messages)
        return messages

    def next_message(self) -> Optional[Message]:
        """Pop one already-decoded message, or None if none is queued."""
        return self._ready.popleft() if self._ready else None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# -- socket adapters ----------------------------------------------------------


def send_message(sock, message: Message) -> None:
    """Write one message as a frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_message(
    sock, decoder: FrameDecoder, recv_bytes: int = 64 << 10
) -> Optional[Message]:
    """Read exactly one message from a blocking socket.

    Frames already buffered in ``decoder`` (a previous recv may have pulled
    several) are drained before the socket is read again. Returns None on a
    clean EOF at a frame boundary.

    Raises:
        ProtocolError: on EOF inside a frame or on a corrupt frame.
    """
    while True:
        queued = decoder.next_message()
        if queued is not None:
            return queued
        chunk = sock.recv(recv_bytes)
        if not chunk:
            if decoder.pending_bytes:
                raise ProtocolError("connection closed mid-frame")
            return None
        decoder.feed(chunk)
