"""The framed binary wire protocol spoken between LSMClient and LSMServer.

Every message travels in one length-prefixed, CRC-checked frame:

====== ===== =========================================================
offset bytes field
====== ===== =========================================================
0      2     magic ``0x4C53`` (``b"LS"``, big-endian)
2      1     protocol version (currently 1)
3      1     message type (see the ``*Request``/``*Response`` classes)
4      4     payload length ``N`` (big-endian u32)
8      N     payload (typed encoding below)
8+N    4     CRC32 over bytes ``[0, 8+N)`` — header *and* payload
====== ===== =========================================================

Payloads reuse the :mod:`repro.common.encoding` conventions: unsigned
LEB128 varints for counts and lengths, varint-length-prefixed byte
strings for keys/values/tenant ids. Floats are fixed 8-byte IEEE-754
big-endian. A decoder rejects (``ProtocolError``) any frame with a bad
magic, unknown version or type, an over-limit length, a CRC mismatch, or
payload bytes left over after the typed decode — so corruption anywhere
in a frame is detected, never silently accepted.

The module is transport-agnostic: :func:`encode_frame` /
:class:`FrameDecoder` work on byte strings; :func:`send_message` /
:func:`recv_message` adapt them to a blocking socket.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.common.encoding import (
    decode_varint,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
)
from repro.errors import ReproError
from repro.observe.tracing import TraceContext

MAGIC = 0x4C53  # b"LS"
VERSION = 1
#: Hard ceiling on a frame's payload; guards the server against a client
#: (or line noise) declaring a multi-gigabyte allocation.
DEFAULT_MAX_PAYLOAD = 8 << 20

_HEADER = struct.Struct(">HBBI")  # magic, version, type, payload length
_CRC = struct.Struct(">I")
_F64 = struct.Struct(">d")
HEADER_SIZE = _HEADER.size
TRAILER_SIZE = _CRC.size


class ProtocolError(ReproError):
    """A frame or payload violated the wire format (corrupt, truncated, unknown)."""


class RemoteError(ReproError):
    """The server answered with an :class:`ErrorResponse` (code + message)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message


# -- payload primitives -------------------------------------------------------


def _put_str(out: bytearray, text: str) -> None:
    put_length_prefixed(out, text.encode("utf-8"))


def _get_str(buf: bytes, offset: int) -> Tuple[str, int]:
    raw, offset = get_length_prefixed(buf, offset)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 in string field: {exc}") from None


def _put_bool(out: bytearray, flag: bool) -> None:
    out.append(1 if flag else 0)


def _get_bool(buf: bytes, offset: int) -> Tuple[bool, int]:
    if offset >= len(buf):
        raise ProtocolError("truncated boolean field")
    byte = buf[offset]
    if byte not in (0, 1):
        raise ProtocolError(f"boolean field holds {byte}, expected 0 or 1")
    return bool(byte), offset + 1


def _put_optional_bytes(out: bytearray, data: Optional[bytes]) -> None:
    _put_bool(out, data is not None)
    if data is not None:
        put_length_prefixed(out, data)


def _get_optional_bytes(buf: bytes, offset: int) -> Tuple[Optional[bytes], int]:
    present, offset = _get_bool(buf, offset)
    if not present:
        return None, offset
    data, offset = get_length_prefixed(buf, offset)
    return bytes(data), offset


def _put_trace(out: bytearray, trace: Optional[TraceContext]) -> None:
    """Optional trailing trace-context block (see :func:`_get_trace`)."""
    if trace is None:
        return
    _put_bool(out, True)
    _put_str(out, trace.trace_id)
    _put_str(out, trace.span_id)
    _put_bool(out, trace.sampled)


def _put_trailers(
    out: bytearray,
    trace: Optional[TraceContext],
    idem: Optional[Tuple[str, int]] = None,
) -> None:
    """Encode the optional trailing blocks of a mutating request.

    Order on the wire is ``[trace block][idempotency block]``. The trace
    block keeps its original "strictly trailing" encoding — when neither
    block is present nothing is written, so every pre-trace frame stays
    byte-identical — but an idempotency block forces an explicit absent
    flag for the trace so the two flag-prefixed blocks never alias.
    """
    if trace is None and idem is None:
        return
    _put_trace(out, trace)
    if trace is None:
        _put_bool(out, False)  # explicit "no trace" so the idem flag is next
    if idem is not None:
        _put_bool(out, True)
        client_id, token = idem
        _put_str(out, client_id)
        out.extend(encode_varint(int(token)))


def _get_idem(buf: bytes, offset: int) -> Tuple[Optional[Tuple[str, int]], int]:
    """Decode the optional idempotency block after the trace block.

    The block is ``flag 0x01 + client_id string + token varint``; a payload
    that ends (or carries an explicit absent flag) decodes as no token.
    Together with ``(tenant,)`` the pair keys the server's request-dedup
    table, so a retried mutation is applied at most once.
    """
    if offset == len(buf):
        return None, offset
    present, offset = _get_bool(buf, offset)
    if not present:
        return None, offset
    client_id, offset = _get_str(buf, offset)
    token, offset = decode_varint(buf, offset)
    return (client_id, token), offset


def _get_trace(buf: bytes, offset: int) -> Tuple[Optional[TraceContext], int]:
    """Decode the optional trace context at the end of a request payload.

    The block is strictly trailing: a payload that simply ends (the pre-trace
    wire image, or a tracing-unaware client) decodes as no context, while a
    present block is a flag byte + trace_id + parent span_id + sampled flag.
    This keeps every pre-existing frame byte-for-byte valid — the CRC covers
    the block when present, and ``_expect_end`` still rejects trailing junk.
    """
    if offset == len(buf):
        return None, offset
    present, offset = _get_bool(buf, offset)
    if not present:
        return None, offset
    trace_id, offset = _get_str(buf, offset)
    span_id, offset = _get_str(buf, offset)
    sampled, offset = _get_bool(buf, offset)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled), offset


# -- message classes ----------------------------------------------------------

_MESSAGE_TYPES: Dict[int, Type["Message"]] = {}


def _register(cls: Type["Message"]) -> Type["Message"]:
    if cls.TYPE in _MESSAGE_TYPES:  # pragma: no cover - module definition bug
        raise ValueError(f"duplicate message type 0x{cls.TYPE:02x}")
    _MESSAGE_TYPES[cls.TYPE] = cls
    return cls


class Message:
    """Base class: every frame body is one typed, round-trippable message."""

    TYPE = -1

    def encode_payload(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode_payload(cls, buf: bytes) -> "Message":
        raise NotImplementedError


@_register
@dataclass(frozen=True)
class PingRequest(Message):
    """Liveness probe; answered by :class:`PongResponse`."""

    TYPE = 0x01
    tenant: str = ""
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PingRequest":
        tenant, offset = _get_str(buf, 0)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, trace=trace)


@_register
@dataclass(frozen=True)
class StatsRequest(Message):
    """Request the server's JSON stats snapshot (metrics + engine + tenants)."""

    TYPE = 0x02
    tenant: str = ""
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsRequest":
        tenant, offset = _get_str(buf, 0)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, trace=trace)


@_register
@dataclass(frozen=True)
class GetRequest(Message):
    TYPE = 0x03
    tenant: str
    key: bytes
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "GetRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, key=bytes(key), trace=trace)


@_register
@dataclass(frozen=True)
class PutRequest(Message):
    """Single durable write; ``ttl`` (simulated seconds) is an optional
    expiry — a presence flag plus fixed f64, encoded before the trace
    block. ``idem`` is an optional trailing ``(client_id, token)``
    idempotency pair (see :func:`_get_idem`)."""

    TYPE = 0x04
    tenant: str
    key: bytes
    value: bytes
    ttl: Optional[float] = None
    trace: Optional[TraceContext] = None
    idem: Optional[Tuple[str, int]] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        put_length_prefixed(out, self.value)
        _put_bool(out, self.ttl is not None)
        if self.ttl is not None:
            out.extend(_F64.pack(self.ttl))
        _put_trailers(out, self.trace, self.idem)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PutRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        value, offset = get_length_prefixed(buf, offset)
        ttl: Optional[float] = None
        if offset < len(buf):
            present, offset = _get_bool(buf, offset)
            if present:
                if offset + _F64.size > len(buf):
                    raise ProtocolError("truncated ttl field")
                ttl = _F64.unpack_from(buf, offset)[0]
                offset += _F64.size
        trace, offset = _get_trace(buf, offset)
        idem, offset = _get_idem(buf, offset)
        _expect_end(buf, offset)
        return cls(
            tenant=tenant, key=bytes(key), value=bytes(value), ttl=ttl,
            trace=trace, idem=idem,
        )


@_register
@dataclass(frozen=True)
class DeleteRequest(Message):
    TYPE = 0x05
    tenant: str
    key: bytes
    trace: Optional[TraceContext] = None
    idem: Optional[Tuple[str, int]] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        _put_trailers(out, self.trace, self.idem)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "DeleteRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        trace, offset = _get_trace(buf, offset)
        idem, offset = _get_idem(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, key=bytes(key), trace=trace, idem=idem)


@_register
@dataclass(frozen=True)
class MultiGetRequest(Message):
    TYPE = 0x06
    tenant: str
    keys: Tuple[bytes, ...] = ()
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(bytes(k) for k in self.keys))

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(len(self.keys)))
        for key in self.keys:
            put_length_prefixed(out, key)
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "MultiGetRequest":
        tenant, offset = _get_str(buf, 0)
        count, offset = decode_varint(buf, offset)
        keys = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            keys.append(bytes(key))
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, keys=tuple(keys), trace=trace)


@_register
@dataclass(frozen=True)
class ScanRequest(Message):
    """Range scan; ``start``/``end`` are inclusive bounds (None = unbounded),
    mirroring :meth:`LSMTree.scan`. ``limit`` caps the reply's entry count
    (the server clamps it to its own ``scan_limit_max``)."""

    TYPE = 0x07
    tenant: str
    start: Optional[bytes] = None
    end: Optional[bytes] = None
    limit: int = 1000
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_optional_bytes(out, self.start)
        _put_optional_bytes(out, self.end)
        out.extend(encode_varint(self.limit))
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ScanRequest":
        tenant, offset = _get_str(buf, 0)
        start, offset = _get_optional_bytes(buf, offset)
        end, offset = _get_optional_bytes(buf, offset)
        limit, offset = decode_varint(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, start=start, end=end, limit=limit, trace=trace)


def _normalize_wire_ops(ops) -> "Tuple[tuple, ...]":
    """Validate/normalize wire batch ops (shared by Batch and TxnCommit).

    Accepted shapes: ``("put", key, value)``, ``("delete", key, b"")``
    (value ignored), ``("merge", key, operand, operator)``, and
    ``("put_ttl", key, value, ttl_seconds)``. 3-tuples for put/delete are
    normalized to carry their implicit extra (None).
    """
    normalized = []
    for op in ops:
        kind, key, value = op[0], op[1], op[2]
        extra = op[3] if len(op) > 3 else None
        if kind not in _WIRE_OP_KINDS:
            raise ValueError(
                f"batch op kind must be one of {_WIRE_OP_KINDS}, got {kind!r}"
            )
        if kind == "merge":
            extra = str(extra if extra is not None else "counter")
        elif kind == "put_ttl":
            if extra is None:
                raise ValueError("put_ttl op requires a ttl seconds extra")
            extra = float(extra)
        else:
            extra = None
        normalized.append((kind, bytes(key), bytes(value or b""), extra))
    return tuple(normalized)


_WIRE_OP_KINDS = ("put", "delete", "merge", "put_ttl")


def _put_wire_ops(out: bytearray, ops) -> None:
    out.extend(encode_varint(len(ops)))
    for kind, key, value, extra in ops:
        out.append(_WIRE_OP_KINDS.index(kind))
        put_length_prefixed(out, key)
        put_length_prefixed(out, value)
        if kind == "merge":
            _put_str(out, extra)
        elif kind == "put_ttl":
            out.extend(_F64.pack(extra))


def _get_wire_ops(buf: bytes, offset: int) -> "Tuple[List[tuple], int]":
    count, offset = decode_varint(buf, offset)
    ops: List[tuple] = []
    for _ in range(count):
        if offset >= len(buf):
            raise ProtocolError("truncated batch op")
        kind_byte = buf[offset]
        offset += 1
        if kind_byte >= len(_WIRE_OP_KINDS):
            raise ProtocolError(f"unknown batch op kind {kind_byte}")
        kind = _WIRE_OP_KINDS[kind_byte]
        key, offset = get_length_prefixed(buf, offset)
        value, offset = get_length_prefixed(buf, offset)
        extra: Optional[object] = None
        if kind == "merge":
            extra, offset = _get_str(buf, offset)
        elif kind == "put_ttl":
            if offset + _F64.size > len(buf):
                raise ProtocolError("truncated put_ttl op")
            extra = _F64.unpack_from(buf, offset)[0]
            offset += _F64.size
        ops.append((kind, bytes(key), bytes(value), extra))
    return ops, offset


@_register
@dataclass(frozen=True)
class BatchRequest(Message):
    """Atomically ordered writes: ``ops`` are ``(kind, key, value[, extra])``
    tuples with kind ``put`` / ``delete`` / ``merge`` / ``put_ttl`` —
    ``extra`` is the operator name (merge) or the TTL in simulated seconds
    (put_ttl). Normalized ops always carry the 4th element."""

    TYPE = 0x08
    tenant: str
    ops: Tuple[tuple, ...] = ()
    trace: Optional[TraceContext] = None
    idem: Optional[Tuple[str, int]] = None

    _KINDS = _WIRE_OP_KINDS

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", _normalize_wire_ops(self.ops))

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        _put_wire_ops(out, self.ops)
        _put_trailers(out, self.trace, self.idem)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "BatchRequest":
        tenant, offset = _get_str(buf, 0)
        ops, offset = _get_wire_ops(buf, offset)
        trace, offset = _get_trace(buf, offset)
        idem, offset = _get_idem(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, ops=tuple(ops), trace=trace, idem=idem)


@_register
@dataclass(frozen=True)
class MergeRequest(Message):
    """A single merge-operand write for a named (pre-registered) operator."""

    TYPE = 0x0A
    tenant: str
    key: bytes
    operand: bytes
    operator: str = "counter"
    trace: Optional[TraceContext] = None
    idem: Optional[Tuple[str, int]] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        put_length_prefixed(out, self.key)
        put_length_prefixed(out, self.operand)
        _put_str(out, self.operator)
        _put_trailers(out, self.trace, self.idem)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "MergeRequest":
        tenant, offset = _get_str(buf, 0)
        key, offset = get_length_prefixed(buf, offset)
        operand, offset = get_length_prefixed(buf, offset)
        operator, offset = _get_str(buf, offset)
        trace, offset = _get_trace(buf, offset)
        idem, offset = _get_idem(buf, offset)
        _expect_end(buf, offset)
        return cls(
            tenant=tenant, key=bytes(key), operand=bytes(operand),
            operator=operator, trace=trace, idem=idem,
        )


@_register
@dataclass(frozen=True)
class TxnCommitRequest(Message):
    """An optimistic-transaction commit: read-set fingerprints + write ops.

    ``read_set`` maps each footprint key to the seqno the client observed
    (the ``GetResult.seqno`` the server reported; 0 = absent). The server
    validates under the engine mutex and answers ``OkResponse`` or an
    ``ErrorResponse`` with code ``conflict``.
    """

    TYPE = 0x0B
    tenant: str
    read_set: Tuple[Tuple[bytes, int], ...] = ()
    ops: Tuple[tuple, ...] = ()
    trace: Optional[TraceContext] = None
    idem: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "read_set",
            tuple(sorted((bytes(k), int(s)) for k, s in dict(self.read_set).items())),
        )
        object.__setattr__(self, "ops", _normalize_wire_ops(self.ops))

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(len(self.read_set)))
        for key, seqno in self.read_set:
            put_length_prefixed(out, key)
            out.extend(encode_varint(seqno))
        _put_wire_ops(out, self.ops)
        _put_trailers(out, self.trace, self.idem)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "TxnCommitRequest":
        tenant, offset = _get_str(buf, 0)
        count, offset = decode_varint(buf, offset)
        read_set = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            seqno, offset = decode_varint(buf, offset)
            read_set.append((bytes(key), seqno))
        ops, offset = _get_wire_ops(buf, offset)
        trace, offset = _get_trace(buf, offset)
        idem, offset = _get_idem(buf, offset)
        _expect_end(buf, offset)
        return cls(
            tenant=tenant, read_set=tuple(read_set), ops=tuple(ops),
            trace=trace, idem=idem,
        )


@_register
@dataclass(frozen=True)
class StatsHistoryRequest(Message):
    """Request the server's time-series history (the sampler's ring buffers).

    ``last_n`` limits each series to its most recent N points (0 = all
    retained points).
    """

    TYPE = 0x09
    tenant: str = ""
    last_n: int = 0
    trace: Optional[TraceContext] = None

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.tenant)
        out.extend(encode_varint(self.last_n))
        _put_trace(out, self.trace)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsHistoryRequest":
        tenant, offset = _get_str(buf, 0)
        last_n, offset = decode_varint(buf, offset)
        trace, offset = _get_trace(buf, offset)
        _expect_end(buf, offset)
        return cls(tenant=tenant, last_n=last_n, trace=trace)


@_register
@dataclass(frozen=True)
class PongResponse(Message):
    TYPE = 0x81
    server_uptime_s: float = 0.0
    engine_uptime_s: float = 0.0

    def encode_payload(self) -> bytes:
        return _F64.pack(self.server_uptime_s) + _F64.pack(self.engine_uptime_s)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "PongResponse":
        if len(buf) != 2 * _F64.size:
            raise ProtocolError(f"pong payload must be 16 bytes, got {len(buf)}")
        return cls(
            server_uptime_s=_F64.unpack_from(buf, 0)[0],
            engine_uptime_s=_F64.unpack_from(buf, _F64.size)[0],
        )


@_register
@dataclass(frozen=True)
class StatsResponse(Message):
    """The server's stats snapshot as a JSON document (UTF-8)."""

    TYPE = 0x82
    payload_json: str = "{}"

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.payload_json)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsResponse":
        text, offset = _get_str(buf, 0)
        _expect_end(buf, offset)
        return cls(payload_json=text)


@_register
@dataclass(frozen=True)
class GetResponse(Message):
    """Point-lookup reply. ``seqno`` is the newest observed version of the
    key (0 when absent) — the fingerprint optimistic transactions validate
    against; encoded as a trailing varint (absent in pre-txn frames, which
    decode as seqno 0)."""

    TYPE = 0x83
    found: bool = False
    value: bytes = b""
    seqno: int = 0

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_bool(out, self.found)
        put_length_prefixed(out, self.value)
        out.extend(encode_varint(self.seqno))
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "GetResponse":
        found, offset = _get_bool(buf, 0)
        value, offset = get_length_prefixed(buf, offset)
        seqno = 0
        if offset < len(buf):
            seqno, offset = decode_varint(buf, offset)
        _expect_end(buf, offset)
        return cls(found=found, value=bytes(value), seqno=seqno)


@_register
@dataclass(frozen=True)
class OkResponse(Message):
    """Acknowledges a write; ``count`` is the records applied (batch size)."""

    TYPE = 0x84
    count: int = 1

    def encode_payload(self) -> bytes:
        return encode_varint(self.count)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "OkResponse":
        count, offset = decode_varint(buf, 0)
        _expect_end(buf, offset)
        return cls(count=count)


@_register
@dataclass(frozen=True)
class MultiGetResponse(Message):
    """Per-key results, in the request's key order: ``(key, found, value)``."""

    TYPE = 0x85
    entries: Tuple[Tuple[bytes, bool, bytes], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "entries",
            tuple((bytes(k), bool(f), bytes(v)) for k, f, v in self.entries),
        )

    def encode_payload(self) -> bytes:
        out = bytearray()
        out.extend(encode_varint(len(self.entries)))
        for key, found, value in self.entries:
            put_length_prefixed(out, key)
            _put_bool(out, found)
            put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "MultiGetResponse":
        count, offset = decode_varint(buf, 0)
        entries = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            found, offset = _get_bool(buf, offset)
            value, offset = get_length_prefixed(buf, offset)
            entries.append((bytes(key), found, bytes(value)))
        _expect_end(buf, offset)
        return cls(entries=tuple(entries))


@_register
@dataclass(frozen=True)
class ScanResponse(Message):
    """Scan results; ``truncated`` signals the limit cut the range short."""

    TYPE = 0x86
    items: Tuple[Tuple[bytes, bytes], ...] = ()
    truncated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "items", tuple((bytes(k), bytes(v)) for k, v in self.items)
        )

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_bool(out, self.truncated)
        out.extend(encode_varint(len(self.items)))
        for key, value in self.items:
            put_length_prefixed(out, key)
            put_length_prefixed(out, value)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ScanResponse":
        truncated, offset = _get_bool(buf, 0)
        count, offset = decode_varint(buf, offset)
        items = []
        for _ in range(count):
            key, offset = get_length_prefixed(buf, offset)
            value, offset = get_length_prefixed(buf, offset)
            items.append((bytes(key), bytes(value)))
        _expect_end(buf, offset)
        return cls(items=tuple(items), truncated=truncated)


@_register
@dataclass(frozen=True)
class ErrorResponse(Message):
    """A failed request. ``code`` is machine-readable (``bad_request``,
    ``throttled``, ``engine``, ``internal``, ``shutting_down``, ``busy``,
    ``overloaded``)."""

    TYPE = 0x8F
    code: str = "internal"
    message: str = ""

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.code)
        _put_str(out, self.message)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "ErrorResponse":
        code, offset = _get_str(buf, 0)
        message, offset = _get_str(buf, offset)
        _expect_end(buf, offset)
        return cls(code=code, message=message)


@_register
@dataclass(frozen=True)
class StatsHistoryResponse(Message):
    """The sampler's ring-buffer series as a JSON document (UTF-8).

    Shape: ``{"samples": n, "capacity": c, "series": {name: {"kind":
    "cumulative"|"level", "t": [...], "v": [...]}}}`` — the direct rendering
    of :meth:`~repro.observe.TimeSeriesSampler.as_dict`.
    """

    TYPE = 0x87
    payload_json: str = "{}"

    def encode_payload(self) -> bytes:
        out = bytearray()
        _put_str(out, self.payload_json)
        return bytes(out)

    @classmethod
    def decode_payload(cls, buf: bytes) -> "StatsHistoryResponse":
        text, offset = _get_str(buf, 0)
        _expect_end(buf, offset)
        return cls(payload_json=text)


REQUEST_TYPES = (
    PingRequest, StatsRequest, GetRequest, PutRequest,
    DeleteRequest, MultiGetRequest, ScanRequest, BatchRequest,
    StatsHistoryRequest, MergeRequest, TxnCommitRequest,
)
RESPONSE_TYPES = (
    PongResponse, StatsResponse, GetResponse, OkResponse,
    MultiGetResponse, ScanResponse, ErrorResponse, StatsHistoryResponse,
)


def _expect_end(buf: bytes, offset: int) -> None:
    if offset != len(buf):
        raise ProtocolError(
            f"{len(buf) - offset} trailing byte(s) after payload decode"
        )


# -- framing ------------------------------------------------------------------


def encode_frame(message: Message) -> bytes:
    """Serialize one message into a complete CRC-trailed frame."""
    payload = message.encode_payload()
    header = _HEADER.pack(MAGIC, VERSION, message.TYPE, len(payload))
    body = header + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def try_decode_frame(
    buf: bytes, offset: int = 0, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Optional[Tuple[Message, int]]:
    """Decode one frame at ``offset`` if fully buffered.

    Returns:
        ``(message, next_offset)``, or None when more bytes are needed.

    Raises:
        ProtocolError: on a structurally invalid frame (bad magic/version/
            type/length/CRC, or a payload that does not decode exactly).
    """
    available = len(buf) - offset
    if available < HEADER_SIZE:
        return None
    magic, version, msg_type, length = _HEADER.unpack_from(buf, offset)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > max_payload:
        raise ProtocolError(f"frame payload {length} exceeds limit {max_payload}")
    total = HEADER_SIZE + length + TRAILER_SIZE
    if available < total:
        return None
    body_end = offset + HEADER_SIZE + length
    (expected_crc,) = _CRC.unpack_from(buf, body_end)
    actual_crc = zlib.crc32(bytes(buf[offset:body_end])) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise ProtocolError(
            f"frame CRC mismatch (stored 0x{expected_crc:08x}, "
            f"computed 0x{actual_crc:08x})"
        )
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type 0x{msg_type:02x}")
    payload = bytes(buf[offset + HEADER_SIZE : body_end])
    try:
        message = cls.decode_payload(payload)
    except ProtocolError:
        raise
    except (ValueError, struct.error) as exc:
        raise ProtocolError(f"malformed {cls.__name__} payload: {exc}") from None
    return message, offset + total


def decode_frame(
    buf: bytes, offset: int = 0, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Tuple[Message, int]:
    """Like :func:`try_decode_frame` but truncation is an error."""
    decoded = try_decode_frame(buf, offset, max_payload)
    if decoded is None:
        raise ProtocolError("truncated frame")
    return decoded


@dataclass
class FrameDecoder:
    """A streaming frame accumulator for a byte-oriented transport.

    Feed it arbitrary chunks; it returns every newly completed message (and
    also queues them for :meth:`next_message`), keeping the unconsumed tail
    buffered. A :class:`ProtocolError` raised by :meth:`feed` poisons the
    stream (resynchronizing inside a corrupt byte stream is not safe for a
    length-prefixed format).
    """

    max_payload: int = DEFAULT_MAX_PAYLOAD
    _buffer: bytearray = field(default_factory=bytearray)
    _ready: "deque" = field(default_factory=deque)

    def feed(self, data: bytes) -> List[Message]:
        self._buffer.extend(data)
        messages: List[Message] = []
        offset = 0
        while True:
            decoded = try_decode_frame(self._buffer, offset, self.max_payload)
            if decoded is None:
                break
            message, offset = decoded
            messages.append(message)
        if offset:
            del self._buffer[:offset]
        self._ready.extend(messages)
        return messages

    def next_message(self) -> Optional[Message]:
        """Pop one already-decoded message, or None if none is queued."""
        return self._ready.popleft() if self._ready else None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# -- socket adapters ----------------------------------------------------------


def send_message(sock, message: Message) -> None:
    """Write one message as a frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_message(
    sock, decoder: FrameDecoder, recv_bytes: int = 64 << 10
) -> Optional[Message]:
    """Read exactly one message from a blocking socket.

    Frames already buffered in ``decoder`` (a previous recv may have pulled
    several) are drained before the socket is read again. Returns None on a
    clean EOF at a frame boundary.

    Raises:
        ProtocolError: on EOF inside a frame or on a corrupt frame.
    """
    while True:
        queued = decoder.next_message()
        if queued is not None:
            return queued
        chunk = sock.recv(recv_bytes)
        if not chunk:
            if decoder.pending_bytes:
                raise ProtocolError("connection closed mid-frame")
            return None
        decoder.feed(chunk)
