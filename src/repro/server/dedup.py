"""Bounded request-dedup table: exactly-once application of retried writes.

A retrying client (:class:`repro.server.client.LSMClient` with a
``RetryPolicy``) cannot know, after a connection dies mid-request, whether
the server applied the operation before the reply was lost. Re-sending is
the only way to make progress — so every mutating request carries an
``idem`` pair ``(client_id, token)`` and the server consults this table
before executing. Keys are ``(tenant, client_id, token)``: tenants cannot
collide with each other, and tokens are scoped to the client that minted
them.

The protocol per request:

1. ``begin(key)`` — exactly one caller per key wins ``("execute", None)``
   and must later call ``finish``. A retry that arrives *after* the
   original completed gets ``("replay", cached_reply)`` without touching
   the engine. A retry that arrives *while* the original is still
   executing blocks (bounded by ``wait_timeout_s``) until the original
   finishes, then replays — this closes the race where a duplicate frame
   lands concurrently and both copies would otherwise execute.
2. ``finish(key, reply)`` — records the reply for future replays and wakes
   any waiting duplicates. ``finish(key, None)`` (the request *failed*
   before it was applied: throttled, shed, validation error) removes the
   entry so a retry executes for real.

Only successful replies are cached: an error reply means nothing was
applied, so re-execution is the correct retry semantics.

The table is LRU-bounded. Eviction only removes *completed* entries — an
in-flight entry is pinned until its ``finish``. Evicting a completed entry
re-opens a tiny at-most-once window (a retry arriving after eviction
re-executes), which is why the capacity default is generous relative to a
client's in-flight window; real stores (e.g. RocksDB-backed RPC tiers)
make the same trade.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

DedupKey = Tuple[str, str, int]  # (tenant, client_id, token)


class _Pending:
    """In-flight marker: duplicates park on ``done`` until ``finish``."""

    __slots__ = ("done", "reply")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.reply: Optional[object] = None


class DedupTable:
    """Thread-safe bounded map of idempotency keys to cached replies.

    Args:
        capacity: completed entries retained (LRU eviction; in-flight
            entries never evicted). Must be >= 1.
        wait_timeout_s: how long a concurrent duplicate waits for the
            original execution before giving up and reporting
            ``("busy", None)`` (the caller should answer with a
            retryable error rather than execute a second time).
    """

    def __init__(self, capacity: int = 4096, wait_timeout_s: float = 30.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.wait_timeout_s = wait_timeout_s
        self._lock = threading.Lock()
        self._done: "OrderedDict[DedupKey, object]" = OrderedDict()
        self._inflight: Dict[DedupKey, _Pending] = {}
        # Highest token finished per (tenant, client_id): lets the server
        # distinguish a retry (token already seen) from fresh work for the
        # server_retries_total metric without an unbounded token set.
        self._last_token: Dict[Tuple[str, str], int] = {}
        self.hits = 0          # replays served from cache (or after a wait)
        self.misses = 0        # fresh executions admitted
        self.evictions = 0
        self.waits = 0         # duplicates that had to park on an in-flight op

    def __len__(self) -> int:
        with self._lock:
            return len(self._done) + len(self._inflight)

    def begin(self, key: DedupKey) -> Tuple[str, Optional[object]]:
        """Admit, replay, or wait. Returns ``(decision, cached_reply)``.

        Decisions: ``"execute"`` (caller runs the op and MUST call
        :meth:`finish`), ``"replay"`` (cached reply returned, do not
        execute), ``"busy"`` (an in-flight original outlived the wait
        budget; answer retryable, do not execute).
        """
        while True:
            with self._lock:
                cached = self._done.get(key)
                if cached is not None:
                    self._done.move_to_end(key)
                    self.hits += 1
                    return "replay", cached
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = _Pending()
                    self.misses += 1
                    return "execute", None
                self.waits += 1
            # A duplicate of an op that is executing right now: wait outside
            # the lock for the original to finish, then replay its reply.
            if not pending.done.wait(self.wait_timeout_s):
                return "busy", None
            if pending.reply is not None:
                with self._lock:
                    self.hits += 1
                return "replay", pending.reply
            # Original failed and was forgotten — loop so the retry executes.

    def finish(self, key: DedupKey, reply: Optional[object]) -> None:
        """Complete an execution admitted by :meth:`begin`.

        ``reply`` is cached for replays; None forgets the key (the op was
        not applied, so a retry should execute).
        """
        with self._lock:
            pending = self._inflight.pop(key, None)
            if reply is not None:
                self._done[key] = reply
                self._done.move_to_end(key)
                tenant, client_id, token = key
                ident = (tenant, client_id)
                if token > self._last_token.get(ident, -1):
                    self._last_token[ident] = token
                while len(self._done) > self.capacity:
                    self._done.popitem(last=False)
                    self.evictions += 1
        if pending is not None:
            pending.reply = reply
            pending.done.set()

    def is_retry(self, key: DedupKey) -> bool:
        """True when this token was already finished by this client.

        Used for the ``server_retries_total`` metric / ``client_retry``
        journal events; approximate after eviction (monotonic-token
        heuristic), never used for correctness decisions.
        """
        tenant, client_id, token = key
        with self._lock:
            if key in self._done or key in self._inflight:
                return True
            return token <= self._last_token.get((tenant, client_id), -1)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._done),
                "inflight": len(self._inflight),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "waits": self.waits,
                "evictions": self.evictions,
            }
