"""Multi-tenant namespaces and fair-share admission control.

Two concerns production stores layer above the engine (Luo & Carey's LSM
survey, §server-side concerns):

* **Namespacing** — each tenant sees a private keyspace. Keys are stored
  as ``<tenant-bytes> 0x00 <user-key>`` over a shared tree; the fixed
  prefix preserves byte order inside a tenant, and tenant ids are
  restricted to ``[A-Za-z0-9._-]`` so no id is a prefix of another's
  range. The same prefixes double as split keys for a tree-per-tenant
  deployment over :class:`repro.sharding.ShardedStore`
  (:func:`tenant_boundaries`).

* **Fair-share admission** — every tenant gets its own deficit token
  bucket (reusing :class:`repro.service.scheduler.RateLimiter`, the same
  primitive metering compaction I/O) sized at the tenant's weighted share
  of the server's per-tenant budget. A request is charged its operation
  count *before* it touches the engine, so a tenant driving 4x its share
  waits in its own bucket — on its own connection threads — while
  compliant tenants' buckets stay positive and admit instantly. The
  result: one hot tenant cannot stall the rest, and the throttling is
  *measured* (per-tenant admitted/throttled counters, wait histogram).
"""

from __future__ import annotations

import re
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.server.protocol import ProtocolError
from repro.service.scheduler import RateLimiter

#: Separator between the tenant id and the user key in a namespaced key.
#: Tenant ids cannot contain it (see _TENANT_RE), so ranges never overlap.
TENANT_SEP = b"\x00"
#: One past the separator: the exclusive upper bound of a tenant's range.
_TENANT_END = b"\x01"

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def validate_tenant(tenant: str) -> bytes:
    """Check a tenant id and return its key-prefix bytes (without separator).

    Raises:
        ProtocolError: for ids that are empty, too long, or hold characters
            outside ``[A-Za-z0-9._-]`` (the wire carries attacker-controlled
            ids; a malformed one is a protocol-level bad request).
    """
    if not _TENANT_RE.match(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}: need 1-64 chars of [A-Za-z0-9._-]"
        )
    return tenant.encode("ascii")


def tenant_prefix(tenant: str) -> bytes:
    """The storage prefix every key of ``tenant`` carries."""
    return validate_tenant(tenant) + TENANT_SEP


def namespaced_key(tenant: str, key: bytes) -> bytes:
    """Map a tenant's user key into the shared keyspace."""
    return tenant_prefix(tenant) + key


def strip_namespace(tenant: str, stored_key: bytes) -> bytes:
    """Inverse of :func:`namespaced_key` (the prefix must match)."""
    prefix = tenant_prefix(tenant)
    if not stored_key.startswith(prefix):
        raise ValueError(f"key {stored_key!r} is not in tenant {tenant!r}")
    return stored_key[len(prefix):]


def tenant_range(
    tenant: str, start: Optional[bytes], end: Optional[bytes]
) -> Tuple[bytes, bytes]:
    """Translate a tenant-relative inclusive scan range into storage keys.

    An unbounded ``end`` maps to ``<tenant> 0x01`` — greater than every
    namespaced key of this tenant (they all continue with ``0x00``) and
    never equal to a stored key, so it is safe as an inclusive bound.
    """
    prefix = tenant_prefix(tenant)
    lo = prefix + (start or b"")
    hi = prefix + end if end is not None else validate_tenant(tenant) + _TENANT_END
    return lo, hi


def tenant_boundaries(tenants) -> "list[bytes]":
    """Split keys giving each tenant its own shard (tree-per-tenant).

    Feed these to :class:`repro.sharding.ShardedStore`: with boundaries at
    every tenant's prefix, each tenant's namespaced range lands in exactly
    one shard (plus one leading shard for keys below the first tenant).
    """
    return sorted(tenant_prefix(t) for t in tenants)


class FairShareAdmission:
    """Per-tenant weighted token buckets over one ops/second budget.

    Args:
        ops_per_second: the fair share — operations per second each
            weight-1.0 tenant may sustain.
        burst_ops: bucket capacity (defaults to one second of refill); the
            slack a compliant tenant may burst through without waiting.
        weights: optional ``{tenant: weight}`` scaling individual shares.
        clock, sleep: injectable for deterministic tests (passed through to
            each tenant's :class:`RateLimiter`).
    """

    def __init__(
        self,
        ops_per_second: float,
        burst_ops: Optional[float] = None,
        weights: Optional[Dict[str, float]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if ops_per_second <= 0:
            raise ConfigError("ops_per_second must be positive")
        if burst_ops is not None and burst_ops <= 0:
            raise ConfigError("burst_ops must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ConfigError(f"tenant {tenant!r} weight must be positive")
        self.ops_per_second = float(ops_per_second)
        self.burst_ops = burst_ops
        self.weights = dict(weights or {})
        self._clock = clock
        self._sleep = sleep
        self._limiters: Dict[str, RateLimiter] = {}
        self._lock = threading.Lock()

    def _limiter(self, tenant: str) -> RateLimiter:
        with self._lock:
            limiter = self._limiters.get(tenant)
            if limiter is None:
                weight = self.weights.get(tenant, 1.0)
                rate = self.ops_per_second * weight
                burst = self.burst_ops * weight if self.burst_ops is not None else rate
                limiter = RateLimiter(
                    rate, burst, clock=self._clock, sleep=self._sleep
                )
                self._limiters[tenant] = limiter
            return limiter

    def admit(self, tenant: str, cost: int = 1) -> float:
        """Charge ``cost`` operations to ``tenant``; block until admitted.

        The wait happens on the caller's (connection-handler) thread, so a
        throttled tenant delays only itself. Returns seconds waited.
        """
        return self._limiter(tenant).request(max(1, cost))

    def tokens(self, tenant: str) -> float:
        """The tenant's current bucket level (diagnostics)."""
        return self._limiter(tenant).tokens

    def snapshot(self) -> Dict[str, dict]:
        """Per-tenant admission accounting for the stats frame."""
        with self._lock:
            limiters = dict(self._limiters)
        return {
            tenant: {
                "ops_admitted": limiter.bytes_admitted,
                "throttle_waits": limiter.waits,
                "throttle_wait_seconds": round(limiter.total_wait_s, 6),
                "share_ops_per_second": self.ops_per_second
                * self.weights.get(tenant, 1.0),
            }
            for tenant, limiter in limiters.items()
        }
