"""LSMServer: a threaded socket front end over the concurrent service layer.

One accept loop plus one handler thread per connection — the classic
thread-per-connection shape, which maps cleanly onto the engine's own
concurrency model: :class:`~repro.service.service.DBService` is thread-safe,
writes group-commit across connections, and every read runs against a
pinned :class:`~repro.core.version.Version` snapshot, so a compaction
installing mid-request never invalidates an in-flight lookup or scan.

QoS before the engine: each request is charged to its tenant's fair-share
token bucket (:class:`~repro.server.tenancy.FairShareAdmission`) *before*
it executes, on its own connection thread — a hot tenant queues in its own
bucket while everyone else's requests flow. Every stage is measured into a
:class:`~repro.observe.MetricsRegistry` (``server_*`` series), so the
Prometheus/JSON exporters show connections, in-flight requests, per-op
latency, and per-tenant throttling with no extra wiring.

Shutdown is a graceful drain: stop accepting, let every handler finish its
in-flight request, then close sockets — bounded by ``drain_timeout_s``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Optional, Set

from repro.common.entry import GetResult
from repro.errors import ConflictError, ReproError
from repro.observe import (
    EventJournal,
    MetricsRegistry,
    SlowOpLog,
    TimeSeriesSampler,
    TraceRecorder,
    attach_engine_source,
)
from repro.observe.tracing import TraceContext, new_trace_id
from repro.server.config import ServerConfig
from repro.server.dedup import DedupTable
from repro.server.overload import STATE_OK, STATE_SHED, OverloadGuard
from repro.server.protocol import (
    BatchRequest,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    GetResponse,
    MergeRequest,
    Message,
    MultiGetRequest,
    MultiGetResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    PutRequest,
    ScanRequest,
    ScanResponse,
    StatsHistoryRequest,
    StatsHistoryResponse,
    StatsRequest,
    StatsResponse,
    TxnCommitRequest,
    encode_frame,
    send_message,
)
from repro.server.tenancy import (
    FairShareAdmission,
    namespaced_key,
    strip_namespace,
    tenant_range,
    validate_tenant,
)


class LSMServer:
    """Serves the framed protocol over TCP, fronting a DBService (or any
    backend with ``get``/``put``/``delete``/``multi_get``/``scan``).

    Args:
        service: the engine front door — typically a
            :class:`~repro.service.service.DBService`; a
            :class:`~repro.sharding.ShardedStore` works too (pair it with
            :func:`~repro.server.tenancy.tenant_boundaries` for a
            tree-per-tenant deployment).
        config: transport + tenancy knobs.
        registry: report ``server_*`` metrics here (a fresh registry by
            default; pass the service's registry for one merged export).
        close_service: also close the backend on :meth:`shutdown`.
        transport: optional socket wrapper (e.g.
            :class:`repro.chaos.FaultyTransport`) applied to every accepted
            connection — the server-side injection point for network chaos.
    """

    def __init__(
        self,
        service,
        config: Optional[ServerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        close_service: bool = False,
        transport=None,
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._close_service = close_service
        self.transport = transport
        self.admission: Optional[FairShareAdmission] = None
        if self.config.tenant_ops_per_second is not None:
            self.admission = FairShareAdmission(
                self.config.tenant_ops_per_second,
                burst_ops=self.config.tenant_burst_ops,
                weights=self.config.tenant_weights,
            )
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: Set[threading.Thread] = set()
        self._conn_sockets: Set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._started_monotonic: Optional[float] = None
        self.address: Optional[tuple] = None

        # Observability: reuse the service's recorder/journal when it has
        # them (attach_observability wired one shared set) so engine spans
        # and server spans land in the same ring, and engine maintenance
        # events interleave with server-side tenant_throttle events.
        cfg = self.config
        recorder = getattr(service, "recorder", None)
        if recorder is None:
            recorder = TraceRecorder(capacity=cfg.trace_capacity)
        if cfg.trace_sampling is not None:
            recorder.sampling = cfg.trace_sampling
        self.recorder = recorder
        observer = getattr(service, "observer", None)
        self.journal = observer.journal if observer is not None else EventJournal()
        self.slow_ops: Optional[SlowOpLog] = None
        if cfg.slow_op_threshold_s is not None:
            self.slow_ops = SlowOpLog(
                threshold_s=cfg.slow_op_threshold_s,
                capacity=cfg.slow_op_capacity,
            )
        self.sampler = TimeSeriesSampler(self.registry, capacity=cfg.history_capacity)
        if hasattr(service, "metrics_snapshot"):
            attach_engine_source(self.sampler, service)

        self.dedup: Optional[DedupTable] = (
            DedupTable(capacity=cfg.dedup_capacity)
            if cfg.dedup_capacity > 0
            else None
        )
        self.overload = OverloadGuard(
            brownout_in_flight=cfg.brownout_in_flight,
            overload_in_flight=cfg.overload_in_flight,
            brownout_scan_limit=cfg.brownout_scan_limit,
            shed_on_backpressure_stop=cfg.shed_on_backpressure_stop,
            journal=self.journal,
        )

        registry = self.registry
        self._connections_total = registry.counter(
            "server_connections_total", "client connections accepted"
        )
        self._connections_rejected = registry.counter(
            "server_connections_rejected_total",
            "connections refused at the max_connections cap",
        )
        self._requests_total = registry.counter(
            "server_requests_total", "requests served (all types)"
        )
        self._protocol_errors = registry.counter(
            "server_protocol_errors_total",
            "malformed/corrupt frames received (connection dropped)",
        )
        self._request_errors = registry.counter(
            "server_request_errors_total",
            "requests answered with an error frame",
        )
        self._in_flight = registry.gauge(
            "server_in_flight_requests", "requests currently executing"
        )
        registry.gauge(
            "server_connections_active", "currently open client connections"
        ).set_function(lambda: len(self._conn_sockets))
        registry.gauge(
            "server_uptime_seconds", "seconds since the server started"
        ).set_function(lambda: self.uptime_seconds)
        self._request_wall = {
            op: registry.histogram(
                "server_request_wall_seconds",
                "server-side request latency (admission + engine + encode)",
                min_value=1e-6,
                labels={"op": op},
            )
            for op in ("ping", "stats", "stats_history", "get", "put",
                       "delete", "multi_get", "scan", "batch", "merge",
                       "txn_commit")
        }
        self._admission_wait = registry.histogram(
            "server_admission_wait_seconds",
            "delay injected by fair-share admission",
            min_value=1e-6,
        )
        self._retries_total = registry.counter(
            "server_retries_total",
            "mutating requests recognized as client retries (idempotency token seen before)",
        )
        self._dedup_hits = registry.counter(
            "server_dedup_hits",
            "retried mutations answered from the dedup table without re-executing",
        )
        self._shed_total = registry.counter(
            "server_shed_total",
            "requests refused with an overloaded error (load shedding)",
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def start(self) -> tuple:
        """Bind, listen, and start the accept loop. Returns ``(host, port)``."""
        if self._listener is not None:
            raise ReproError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(min(self.config.max_connections, 128))
        listener.settimeout(self.config.idle_poll_s)
        self._listener = listener
        self.address = listener.getsockname()
        self._started_monotonic = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="lsm-server-accept", daemon=True
        )
        self._accept_thread.start()
        if self.config.stats_interval_s > 0:
            self.sampler.scrape()  # point zero, so history is never empty
            self.sampler.start(self.config.stats_interval_s)
        return self.address

    def shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close.

        Connections idle between requests close immediately; a handler
        mid-request gets until the drain budget expires, after which its
        socket is force-closed (the client sees a reset, never a half
        response — frames are written with one ``sendall``).
        """
        if self._stop.is_set():
            return
        self._stop.set()
        self.sampler.stop()
        budget = (
            drain_timeout_s
            if drain_timeout_s is not None
            else self.config.drain_timeout_s
        )
        deadline = time.monotonic() + budget
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=budget)
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            stragglers = list(self._conn_sockets)
        for sock in stragglers:
            try:
                sock.close()
            except OSError:
                pass
        for handler in handlers:
            handler.join(timeout=1.0)
        if self._close_service:
            self.service.close()

    def __enter__(self) -> "LSMServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- accept / connection loops -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by shutdown()
            if self.transport is not None:
                conn = self.transport.wrap(conn)
            if self._stop.is_set():
                self._refuse(conn, "shutting_down", "server is draining")
                continue
            with self._lock:
                if len(self._conn_sockets) >= self.config.max_connections:
                    admit = False
                else:
                    admit = True
                    self._conn_sockets.add(conn)
            if not admit:
                self._connections_rejected.inc()
                self._refuse(conn, "busy", "connection limit reached")
                continue
            self._connections_total.inc()
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn, addr),
                name=f"lsm-server-conn-{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._handlers.add(handler)
            handler.start()

    def _refuse(self, conn: socket.socket, code: str, message: str) -> None:
        try:
            send_message(conn, ErrorResponse(code=code, message=message))
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_connection(self, conn: socket.socket, addr) -> None:
        decoder = FrameDecoder(max_payload=self.config.max_payload_bytes)
        conn.settimeout(self.config.idle_poll_s)
        # Frame-decode CPU time accumulates here and is attributed to the
        # next request served — the "wire_decode" stage of its breakdown.
        decode_s = 0.0
        try:
            while True:
                request = decoder.next_message()
                if request is not None:
                    self._serve_request(conn, request, wire_decode_s=decode_s)
                    decode_s = 0.0
                    continue
                if self._stop.is_set():
                    # Drained: nothing buffered, nothing in flight. One last
                    # short read so a request racing the shutdown gets an
                    # explicit shutting_down refusal instead of a silent
                    # close (its client would otherwise only see a
                    # ConnectionLostError).
                    try:
                        chunk = conn.recv(self.config.recv_bytes)
                        if chunk:
                            decoder.feed(chunk)
                    except (ProtocolError, OSError):
                        return
                    if decoder.next_message() is not None:
                        self._try_send(
                            conn,
                            ErrorResponse(
                                code="shutting_down",
                                message="server is draining",
                            ),
                        )
                    return
                try:
                    chunk = conn.recv(self.config.recv_bytes)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    if decoder.pending_bytes:
                        self._protocol_errors.inc()
                    return
                feed0 = time.perf_counter()
                try:
                    decoder.feed(chunk)
                    decode_s += time.perf_counter() - feed0
                except ProtocolError as exc:
                    self._protocol_errors.inc()
                    self._try_send(
                        conn, ErrorResponse(code="bad_frame", message=str(exc))
                    )
                    return  # the stream is unsynchronized; drop it
        finally:
            with self._lock:
                self._conn_sockets.discard(conn)
                self._handlers.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    def _try_send(self, conn: socket.socket, message: Message) -> None:
        try:
            send_message(conn, message)
        except OSError:
            pass

    # -- request dispatch ------------------------------------------------------

    _OP_NAMES = {
        PingRequest: "ping",
        StatsRequest: "stats",
        StatsHistoryRequest: "stats_history",
        GetRequest: "get",
        PutRequest: "put",
        DeleteRequest: "delete",
        MultiGetRequest: "multi_get",
        ScanRequest: "scan",
        BatchRequest: "batch",
        MergeRequest: "merge",
        TxnCommitRequest: "txn_commit",
    }

    def _serve_request(
        self, conn: socket.socket, request: Message, wire_decode_s: float = 0.0
    ) -> None:
        op = self._OP_NAMES.get(type(request))
        if op is None:
            self._protocol_errors.inc()
            self._try_send(
                conn,
                ErrorResponse(
                    code="bad_request",
                    message=f"unexpected message {type(request).__name__}",
                ),
            )
            return
        self._requests_total.inc()
        self._in_flight.add(1.0)
        # Classify load *after* this request is counted: at the brink,
        # the request that crosses the threshold is the one shed.
        load_state = self.overload.state(int(self._in_flight.value))
        wall0 = time.perf_counter()
        stages: dict = {}
        if wire_decode_s > 0.0:
            stages["wire_decode"] = wire_decode_s
        recorder = self.recorder
        ctx = getattr(request, "trace", None)
        span = None
        token = None
        if recorder is not None:
            if ctx is None:
                # No client context — this request's outermost span is here,
                # so the server makes the root sampling decision, once.
                # Brownout sheds optional work first: no new root samples.
                sampled = (
                    recorder.should_sample()
                    if not self.overload.suppress_tracing(load_state)
                    else False
                )
                ctx = TraceContext(new_trace_id(), "", sampled)
            if ctx.sampled:
                span = recorder.start(f"server:{op}", parent=ctx)
            # Activate the decision — positive or negative — so every
            # maybe_start() below (service, engine) inherits it rather
            # than rolling its own dice mid-request.
            active = (
                span.context()
                if span is not None
                else TraceContext(ctx.trace_id, ctx.span_id, False)
            )
            token = recorder.activate(active)
        exec0 = time.perf_counter()
        try:
            response = self._execute(op, request, stages, load_state)
        except ProtocolError as exc:
            self._request_errors.inc()
            response = ErrorResponse(code="bad_request", message=str(exc))
        except ConflictError as exc:
            # An expected optimistic-concurrency outcome, not a server
            # failure: counted separately, excluded from request_errors.
            self.registry.counter(
                "server_txn_conflicts_total",
                "transaction commits rejected by read-set validation",
            ).inc()
            response = ErrorResponse(code="conflict", message=str(exc))
        except ReproError as exc:
            self._request_errors.inc()
            response = ErrorResponse(
                code="engine", message=f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # noqa: BLE001 - a handler must not die
            self._request_errors.inc()
            response = ErrorResponse(
                code="internal", message=f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._in_flight.add(-1.0)
            if recorder is not None:
                recorder.deactivate(token)
        exec_s = time.perf_counter() - exec0
        stages["engine"] = max(0.0, exec_s - stages.get("admission", 0.0))
        encode0 = time.perf_counter()
        frame = encode_frame(response)
        stages["reply_encode"] = time.perf_counter() - encode0
        total = (time.perf_counter() - wall0) + wire_decode_s
        self._request_wall[op].record(total)
        tenant = getattr(request, "tenant", "") or self.config.default_tenant
        # Close the books *before* the reply hits the wire, so a client that
        # reads its response is guaranteed to find the full span/slow-op
        # record already published (no racing with the handler thread).
        if span is not None:
            for name in ("wire_decode", "admission", "engine", "reply_encode"):
                if name in stages:
                    span.add_stage(name, stages[name])
            recorder.finish(
                span, op=op, tenant=tenant,
                error=isinstance(response, ErrorResponse),
            )
        if self.slow_ops is not None:
            attrs = {"tenant": tenant}
            if span is not None:
                attrs["trace_id"] = span.trace_id
            self.slow_ops.observe(op, total, stages, **attrs)
        try:
            conn.sendall(frame)
        except OSError:
            pass

    def _resolve_tenant(self, request: Message) -> str:
        tenant = getattr(request, "tenant", "") or self.config.default_tenant
        validate_tenant(tenant)
        return tenant

    def _admit(self, tenant: str, cost: int, stages: Optional[dict] = None) -> None:
        if self.admission is None:
            return
        waited = self.admission.admit(tenant, cost)
        if stages is not None:
            stages["admission"] = stages.get("admission", 0.0) + waited
        self.registry.counter(
            "server_tenant_ops_total",
            "operations admitted per tenant",
            labels={"tenant": tenant},
        ).inc(cost)
        if waited > 0:
            self._admission_wait.record(waited)
            self.registry.counter(
                "server_tenant_throttle_waits_total",
                "admission waits per tenant (fair-share throttling engaged)",
                labels={"tenant": tenant},
            ).inc()
            self.journal.emit(
                "tenant_throttle", tenant=tenant, waited_s=waited, cost=cost
            )

    #: Ops that change state — the ones idempotency tokens and the
    #: backpressure-stop shed apply to.
    _MUTATING_OPS = frozenset({"put", "delete", "merge", "batch", "txn_commit"})
    #: Ops served even while shedding: an operator must be able to see why.
    _ALWAYS_SERVED = frozenset({"ping", "stats", "stats_history"})

    def _execute(
        self, op: str, request: Message, stages: dict, load_state: str = STATE_OK
    ) -> Message:
        tenant = self._resolve_tenant(request)
        if op not in self._ALWAYS_SERVED:
            if load_state == STATE_SHED:
                self._shed_total.inc()
                self.overload.record_shed(op, tenant, "in_flight")
                return ErrorResponse(
                    code="overloaded",
                    message="server is shedding load; retry with backoff",
                )
            if (
                op in self._MUTATING_OPS
                and self.overload.shed_on_backpressure_stop
                and self._backpressure_stopped()
            ):
                self._shed_total.inc()
                self.overload.record_shed(op, tenant, "backpressure_stop")
                return ErrorResponse(
                    code="overloaded",
                    message="engine backpressure is in stop; retry with backoff",
                )
        idem = getattr(request, "idem", None)
        if idem is None or self.dedup is None or op not in self._MUTATING_OPS:
            return self._execute_op(op, request, tenant, stages, load_state)
        # Exactly-once: admit, replay, or park behind an in-flight original.
        client_id, idem_token = idem
        key = (tenant, client_id, idem_token)
        if self.dedup.is_retry(key):
            self._retries_total.inc()
            self.journal.emit(
                "client_retry", op=op, tenant=tenant,
                client_id=client_id, token=idem_token,
            )
        decision, cached = self.dedup.begin(key)
        if decision == "replay":
            self._dedup_hits.inc()
            self.journal.emit(
                "dedup_hit", op=op, tenant=tenant,
                client_id=client_id, token=idem_token,
            )
            return cached
        if decision == "busy":
            # The original execution outlived the wait budget; answering
            # retryable is safer than risking a second application.
            return ErrorResponse(
                code="overloaded",
                message="duplicate request still executing; retry",
            )
        response: Optional[Message] = None
        try:
            response = self._execute_op(op, request, tenant, stages, load_state)
            return response
        finally:
            # Only a success is cached for replay: an error frame means the
            # op was not applied, so a retry must execute for real.
            applied = response if isinstance(response, OkResponse) else None
            self.dedup.finish(key, applied)

    def _backpressure_stopped(self) -> bool:
        controller = getattr(self.service, "backpressure", None)
        if controller is None:
            return False
        try:
            return controller.state() == "stop"
        except Exception:  # noqa: BLE001 - shedding must never break serving
            return False

    def _execute_op(
        self, op: str, request: Message, tenant: str, stages: dict,
        load_state: str = STATE_OK,
    ) -> Message:
        service = self.service
        if op == "ping":
            info = service.ping() if hasattr(service, "ping") else {}
            return PongResponse(
                server_uptime_s=self.uptime_seconds,
                engine_uptime_s=info.get("engine_uptime_seconds", 0.0),
            )
        if op == "stats":
            return StatsResponse(payload_json=json.dumps(self.stats_snapshot()))
        if op == "stats_history":
            self.sampler.scrape()  # serve a fresh tail even between intervals
            payload = self.sampler.as_dict(last_n=request.last_n or None)
            return StatsHistoryResponse(payload_json=json.dumps(payload))
        if op == "get":
            self._admit(tenant, 1, stages)
            result = service.get(namespaced_key(tenant, request.key))
            return GetResponse(
                found=result.found, value=result.value or b"",
                seqno=result.seqno,
            )
        if op == "put":
            self._admit(tenant, 1, stages)
            service.put(
                namespaced_key(tenant, request.key), request.value,
                ttl=request.ttl,
            )
            return OkResponse(count=1)
        if op == "merge":
            self._admit(tenant, 1, stages)
            service.merge(
                namespaced_key(tenant, request.key), request.operand,
                operator=request.operator,
            )
            return OkResponse(count=1)
        if op == "delete":
            self._admit(tenant, 1, stages)
            service.delete(namespaced_key(tenant, request.key))
            return OkResponse(count=1)
        if op == "multi_get":
            self._admit(tenant, len(request.keys), stages)
            stored = [namespaced_key(tenant, key) for key in request.keys]
            results = service.multi_get(stored)
            entries = []
            for user_key, stored_key in zip(request.keys, stored):
                result = results.get(stored_key, GetResult())
                entries.append((user_key, result.found, result.value or b""))
            return MultiGetResponse(entries=tuple(entries))
        if op == "scan":
            self._admit(tenant, 1, stages)
            limit = min(max(1, request.limit), self.config.scan_limit_max)
            limit = self.overload.clamp_scan_limit(limit, load_state)
            lo, hi = tenant_range(tenant, request.start, request.end)
            items = []
            truncated = False
            for stored_key, value in service.scan(lo, hi):
                if len(items) >= limit:
                    truncated = True
                    break
                items.append((strip_namespace(tenant, stored_key), value))
            return ScanResponse(items=tuple(items), truncated=truncated)
        if op == "batch":
            self._admit(tenant, len(request.ops), stages)
            service.write(self._namespace_ops(tenant, request.ops))
            return OkResponse(count=len(request.ops))
        if op == "txn_commit":
            self._admit(tenant, max(1, len(request.ops)), stages)
            read_set = {
                namespaced_key(tenant, key): seqno
                for key, seqno in request.read_set
            }
            count = service.commit_transaction(
                read_set, self._namespace_ops(tenant, request.ops)
            )
            return OkResponse(count=count)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    @staticmethod
    def _namespace_ops(tenant: str, ops) -> list:
        """Rewrite wire op keys into the tenant's namespace."""
        return [
            (kind, namespaced_key(tenant, key), value, extra)
            for kind, key, value, extra in ops
        ]

    # -- stats -----------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Everything the ``stats`` frame reports, as one JSON-able dict."""
        service = self.service
        payload = {
            "server": {
                "address": list(self.address) if self.address else None,
                "uptime_seconds": self.uptime_seconds,
                "draining": self._stop.is_set(),
                "connections_active": len(self._conn_sockets),
            },
            "metrics": self.registry.snapshot(),
        }
        if hasattr(service, "ping"):
            payload["health"] = service.ping()
        if hasattr(service, "metrics_snapshot"):
            payload["engine"] = service.metrics_snapshot()
        if self.admission is not None:
            payload["tenants"] = self.admission.snapshot()
        payload["journal"] = {
            "capacity": self.journal.capacity,
            "emitted": self.journal.emitted,
            "evicted": self.journal.evicted,
            "counts": self.journal.counts_by_kind(),
            "recent": [e.as_dict() for e in self.journal.events(20)],
        }
        payload["traces"] = {
            "sampling": self.recorder.sampling,
            "sampled": self.recorder.sampled,
            "retained": len(self.recorder),
        }
        if self.slow_ops is not None:
            payload["slow_ops"] = self.slow_ops.snapshot()
        if self.dedup is not None:
            payload["dedup"] = self.dedup.stats()
        payload["overload"] = self.overload.stats()
        payload["history"] = {
            "samples": self.sampler.samples,
            "series": len(self.sampler.names()),
        }
        return payload
