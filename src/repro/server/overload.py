"""Server overload shedding: brownout first, refuse (``overloaded``) last.

The server already has *per-tenant* fairness (token buckets answering
``throttled``) and an engine-side :class:`~repro.service.BackpressureController`
that slows and eventually stops writers when compaction debt piles up. What
neither covers is aggregate overload of the wire tier itself: more in-flight
requests than handler threads can serve within client deadlines. Blocking is
the worst answer under a deadline regime — the client times out, retries,
and the queue grows (the classic retry storm). Shedding early converts that
into fast, explicitly-retryable ``overloaded`` refusals.

Degradation ladder (evaluated per request, cheapest signal first —
in-flight request count, which the server already tracks):

1. **ok** — below ``brownout_in_flight``: serve everything normally.
2. **brownout** — at/above ``brownout_in_flight``: keep serving, but shed
   optional work: trace sampling is suppressed and scan limits are clamped
   to ``brownout_scan_limit`` so one expensive range read cannot occupy a
   handler for long.
3. **shed** — at/above ``overload_in_flight``: refuse data-plane work with
   ``overloaded``. Health probes (ping) and stats are always served — an
   operator must be able to see *why* the server is refusing.

Independently, when ``shed_on_backpressure_stop`` is set and the engine's
backpressure controller reports ``stop``, *mutating* requests are shed
instead of parking handler threads on the write gate past every client's
deadline. Reads still flow — the engine can serve them.

State transitions are journaled (kind ``backpressure``, ``layer:
"server"``), every shed emits ``request_shed``, and ``server_shed_total``
counts refusals for the exporters.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

STATE_OK = "ok"
STATE_BROWNOUT = "brownout"
STATE_SHED = "shed"


class OverloadGuard:
    """Queue-depth-aware admission for the wire tier.

    Args:
        brownout_in_flight: in-flight request count at which optional work
            (tracing, large scans) is shed; None disables brownout.
        overload_in_flight: in-flight count at which data-plane requests
            are refused with ``overloaded``; None disables shedding.
        brownout_scan_limit: scan-limit clamp applied during brownout.
        shed_on_backpressure_stop: refuse mutations (``overloaded``) while
            the engine backpressure state is ``stop`` instead of blocking
            the handler thread on the write gate.
    """

    def __init__(
        self,
        brownout_in_flight: Optional[int] = None,
        overload_in_flight: Optional[int] = None,
        brownout_scan_limit: int = 256,
        shed_on_backpressure_stop: bool = True,
        journal=None,
    ) -> None:
        self.brownout_in_flight = brownout_in_flight
        self.overload_in_flight = overload_in_flight
        self.brownout_scan_limit = brownout_scan_limit
        self.shed_on_backpressure_stop = shed_on_backpressure_stop
        self.journal = journal
        self._lock = threading.Lock()
        self._state = STATE_OK
        self.shed_total = 0
        self.brownout_entries = 0

    def state(self, in_flight: int) -> str:
        """Classify the current depth and journal state transitions."""
        if (
            self.overload_in_flight is not None
            and in_flight >= self.overload_in_flight
        ):
            new = STATE_SHED
        elif (
            self.brownout_in_flight is not None
            and in_flight >= self.brownout_in_flight
        ):
            new = STATE_BROWNOUT
        else:
            new = STATE_OK
        with self._lock:
            old = self._state
            if new != old:
                self._state = new
                if new == STATE_BROWNOUT:
                    self.brownout_entries += 1
        if new != old and self.journal is not None:
            self.journal.emit(
                "backpressure",
                layer="server", state=new, previous=old,
                in_flight=in_flight,
            )
        return new

    def record_shed(self, op: str, tenant: str, reason: str) -> None:
        """Count one refusal and journal it (kind ``request_shed``)."""
        with self._lock:
            self.shed_total += 1
        if self.journal is not None:
            self.journal.emit("request_shed", op=op, tenant=tenant, reason=reason)

    def clamp_scan_limit(self, limit: int, state: str) -> int:
        """Brownout clamps scan sizes; other states leave them alone."""
        if state == STATE_BROWNOUT:
            return min(limit, self.brownout_scan_limit)
        return limit

    def suppress_tracing(self, state: str) -> bool:
        """During brownout (and shed) new trace spans are not sampled."""
        return state != STATE_OK

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "brownout_in_flight": self.brownout_in_flight,
                "overload_in_flight": self.overload_in_flight,
                "brownout_scan_limit": self.brownout_scan_limit,
                "shed_on_backpressure_stop": self.shed_on_backpressure_stop,
                "shed_total": self.shed_total,
                "brownout_entries": self.brownout_entries,
            }
