"""LSMClient: a blocking client for the framed protocol.

One socket, one request in flight at a time (responses carry no ids; the
protocol is strictly request/response per connection — open more clients
for parallelism, which is exactly what the load generator does). The
client mirrors the :class:`~repro.service.service.DBService` surface so
code can swap an in-process handle for a network one.

Pass a :class:`~repro.observe.MetricsRegistry` to record client-observed
latency — the full round trip including admission delay, which is the
number a tenant actually experiences — into ``client_op_wall_seconds``
histograms labelled by op and tenant.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.entry import GetResult
from repro.errors import ConflictError, ReproError
from repro.observe import TraceRecorder
from repro.server.protocol import (
    BatchRequest,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    GetResponse,
    MergeRequest,
    Message,
    MultiGetRequest,
    MultiGetResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    PutRequest,
    RemoteError,
    ScanRequest,
    ScanResponse,
    StatsHistoryRequest,
    StatsHistoryResponse,
    StatsRequest,
    StatsResponse,
    TxnCommitRequest,
    recv_message,
    send_message,
)


class LSMClient:
    """A blocking connection to an :class:`~repro.server.server.LSMServer`.

    Args:
        host, port: the server's address (from ``server.address``).
        tenant: namespace every request is issued under.
        timeout_s: socket timeout for connect/send/recv.
        registry: optional metrics registry for client-observed latency.
        max_payload_bytes: frame decode limit (mirror the server's).
        trace_sampling: fraction of requests to trace end to end. A sampled
            request opens a ``client:<op>`` root span and sends its context
            on the wire, so the server's and engine's spans join it under
            one trace id.
        trace_recorder: record spans here instead of a private recorder
            (share one across clients to read the whole fleet's traces).
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "",
        timeout_s: float = 10.0,
        registry=None,
        max_payload_bytes: Optional[int] = None,
        trace_sampling: float = 0.0,
        trace_recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        kwargs = {}
        if max_payload_bytes is not None:
            kwargs["max_payload"] = max_payload_bytes
        self._decoder = FrameDecoder(**kwargs)
        self._registry = registry
        self.recorder = trace_recorder
        if self.recorder is None and trace_sampling > 0.0:
            self.recorder = TraceRecorder(sampling=trace_sampling)
        elif self.recorder is not None and trace_sampling > 0.0:
            self.recorder.sampling = trace_sampling
        self._closed = False

    # -- plumbing --------------------------------------------------------------

    def _call(self, op: str, request: Message, expect: type) -> Message:
        if self._closed:
            raise ReproError("operation on a closed LSMClient")
        recorder = self.recorder
        span = None
        if recorder is not None and recorder.should_sample():
            # The client is the outermost span: its root decision rides the
            # wire inside the request, and the server span it spawns links
            # back here via parent_id.
            span = recorder.start(f"client:{op}")
            request = dataclasses.replace(request, trace=span.context())
        wall0 = time.perf_counter()
        send_message(self._sock, request)
        if span is not None:
            span.add_stage("send", time.perf_counter() - wall0)
        response = recv_message(self._sock, self._decoder)
        total = time.perf_counter() - wall0
        if span is not None:
            span.add_stage("await_reply", total - span.stage_dict()["send"])
            recorder.finish(span, op=op, tenant=self.tenant or "default")
        if self._registry is not None:
            self._registry.histogram(
                "client_op_wall_seconds",
                "client-observed round-trip latency",
                min_value=1e-6,
                labels={"op": op, "tenant": self.tenant or "default"},
            ).record(total)
        if response is None:
            raise ProtocolError("server closed the connection")
        if isinstance(response, ErrorResponse):
            if response.code == "conflict":
                # Surface optimistic-concurrency losses as the same typed
                # error every in-process handle raises, so retry loops are
                # transport-agnostic.
                raise ConflictError(response.message)
            raise RemoteError(response.code, response.message)
        if not isinstance(response, expect):
            raise ProtocolError(
                f"expected {expect.__name__}, got {type(response).__name__}"
            )
        return response

    # -- the API ---------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness: server and engine uptime, as reported by the server."""
        pong = self._call("ping", PingRequest(tenant=self.tenant), PongResponse)
        return {
            "ok": True,
            "server_uptime_seconds": pong.server_uptime_s,
            "engine_uptime_seconds": pong.engine_uptime_s,
        }

    def stats(self) -> dict:
        """The server's full stats snapshot (parsed JSON)."""
        reply = self._call("stats", StatsRequest(tenant=self.tenant), StatsResponse)
        return json.loads(reply.payload_json)

    def stats_history(self, last_n: int = 0) -> dict:
        """The server's time-series history (parsed JSON).

        ``last_n`` limits each series to its newest ``n`` points; 0 returns
        everything the server retains. The shape is
        ``{"samples", "capacity", "series": {name: {kind, t, v, ...}}}``.
        """
        reply = self._call(
            "stats_history",
            StatsHistoryRequest(tenant=self.tenant, last_n=last_n),
            StatsHistoryResponse,
        )
        return json.loads(reply.payload_json)

    def get(self, key: bytes) -> GetResult:
        reply = self._call("get", GetRequest(tenant=self.tenant, key=key), GetResponse)
        result = GetResult()
        result.seqno = reply.seqno
        if reply.found:
            result.found = True
            result.value = reply.value
        return result

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> None:
        self._call(
            "put",
            PutRequest(tenant=self.tenant, key=key, value=value, ttl=ttl),
            OkResponse,
        )

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> None:
        """Queue a merge operand for a server-registered operator."""
        self._call(
            "merge",
            MergeRequest(
                tenant=self.tenant, key=key, operand=operand, operator=operator
            ),
            OkResponse,
        )

    def delete(self, key: bytes) -> None:
        self._call("delete", DeleteRequest(tenant=self.tenant, key=key), OkResponse)

    def multi_get(self, keys: Sequence[bytes]) -> Dict[bytes, GetResult]:
        """Batched lookup over the distinct keys, in sorted key order (the
        request is normalized client-side so every handle agrees)."""
        reply = self._call(
            "multi_get",
            MultiGetRequest(tenant=self.tenant, keys=tuple(sorted(set(keys)))),
            MultiGetResponse,
        )
        out: Dict[bytes, GetResult] = {}
        for key, found, value in reply.entries:
            result = GetResult()
            if found:
                result.found = True
                result.value = value
            out[key] = result
        return out

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: int = 1000,
    ) -> List[Tuple[bytes, bytes]]:
        """Up to ``limit`` (key, value) pairs from the inclusive range.

        Use :attr:`last_scan_truncated` to detect a limit-cut range (and
        re-issue from past the last key to page through).
        """
        reply = self._call(
            "scan",
            ScanRequest(tenant=self.tenant, start=start, end=end, limit=limit),
            ScanResponse,
        )
        self.last_scan_truncated = reply.truncated
        return list(reply.items)

    def batch(self, ops: Sequence[tuple]) -> int:
        """Apply ``(kind, key, value[, extra])`` writes atomically in order
        (one group-commit WAL frame server-side); returns the count."""
        reply = self._call(
            "batch", BatchRequest(tenant=self.tenant, ops=tuple(ops)), OkResponse
        )
        return reply.count

    def write(self, batch) -> None:
        """Apply a :class:`repro.txn.WriteBatch` (or op-tuple iterable)
        atomically — the KVStore-surface spelling of :meth:`batch`."""
        ops = list(batch)
        if ops:
            self.batch(ops)

    def commit_transaction(self, read_set: Dict[bytes, int], ops) -> int:
        """Commit an optimistic transaction over the wire.

        ``read_set`` maps keys to the ``GetResult.seqno`` fingerprints this
        client observed. Raises :class:`~repro.errors.ConflictError` when
        server-side validation fails (nothing applied).
        """
        reply = self._call(
            "txn_commit",
            TxnCommitRequest(
                tenant=self.tenant,
                read_set=tuple(dict(read_set).items()),
                ops=tuple(ops),
            ),
            OkResponse,
        )
        return reply.count

    def snapshot(self):
        """Not supported over the wire.

        A snapshot pins server-side state; the stateless request/response
        protocol has no snapshot leases. Remote transactions therefore run
        with ``snapshot_reads=False`` (see :meth:`transaction`).
        """
        raise NotImplementedError(
            "LSMClient cannot pin a server-side snapshot; use transaction() "
            "(live reads + commit validation) or an in-process handle"
        )

    def transaction(self) -> "Transaction":
        """Begin an optimistic transaction over this connection.

        Remote transactions read *live committed state* rather than a pinned
        snapshot (``snapshot_reads=False``): each read records the
        server-reported seqno, so commit validation still catches every
        concurrent writer, but two reads inside one transaction may observe
        different commit points — weaker than the snapshot isolation the
        in-process handles provide.
        """
        from repro.txn import Transaction

        return Transaction(self, snapshot_reads=False)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "LSMClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
