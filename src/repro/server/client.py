"""LSMClient: a blocking, fault-tolerant client for the framed protocol.

One socket, one request in flight at a time (responses carry no ids; the
protocol is strictly request/response per connection — open more clients
for parallelism, which is exactly what the load generator does). The
client mirrors the :class:`~repro.service.service.DBService` surface so
code can swap an in-process handle for a network one.

Failure handling is layered:

* Every transport failure under a request — reset, half-close, a frame cut
  short, a socket timeout, a short-read decode error — surfaces as one
  typed :class:`~repro.errors.ConnectionLostError`, and the connection is
  dropped (a desynchronized request/response stream must never be reused).
* With a :class:`RetryPolicy`, the client retries transport losses and
  explicitly-retryable server refusals (``overloaded``/``busy``/
  ``shutting_down``) with capped exponential backoff + jitter, reconnecting
  as needed, all under one per-request deadline. When the budget runs out
  it raises :class:`~repro.errors.DeadlineExceededError` rather than
  sleeping past the deadline.
* Mutating requests (put/delete/merge/batch/txn-commit) carry an
  idempotency pair ``(client_id, token)``; the server's dedup table replays
  the original reply for a retried token instead of re-executing, so a
  retry after an ambiguous loss ("did my write land before the connection
  died?") is applied at most once.

Pass a :class:`~repro.observe.MetricsRegistry` to record client-observed
latency — the full round trip including admission delay and every retry,
which is the number a tenant actually experiences — into
``client_op_wall_seconds`` histograms labelled by op and tenant, plus
``client_retries_total`` / ``client_reconnects_total`` counters.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.entry import GetResult
from repro.errors import (
    ConfigError,
    ConflictError,
    ConnectionLostError,
    DeadlineExceededError,
    ReproError,
)
from repro.observe import TraceRecorder
from repro.server.protocol import (
    BatchRequest,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    GetResponse,
    MergeRequest,
    Message,
    MultiGetRequest,
    MultiGetResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    PutRequest,
    RemoteError,
    ScanRequest,
    ScanResponse,
    StatsHistoryRequest,
    StatsHistoryResponse,
    StatsRequest,
    StatsResponse,
    TxnCommitRequest,
    recv_message,
    send_message,
)

#: Error codes the server sends when retrying (after backoff) is the right
#: response: the request was refused *before* execution, nothing was applied.
RETRYABLE_CODES = ("overloaded", "busy", "shutting_down", "throttled")

#: Request types whose execution changes state — the ones that carry
#: idempotency tokens when a retry policy is active.
_MUTATING_TYPES = (
    PutRequest, DeleteRequest, MergeRequest, BatchRequest, TxnCommitRequest,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard an :class:`LSMClient` fights for each request.

    Attributes:
        max_attempts: total tries per operation (1 = no retries).
        backoff_base_s: first retry delay; attempt ``k`` waits up to
            ``min(backoff_cap_s, backoff_base_s * 2**k)``.
        backoff_cap_s: ceiling on a single backoff sleep. This is also the
            worst-case overshoot past the deadline a caller can observe:
            the client never *sleeps* past the deadline, but the attempt in
            flight when it expires is bounded by the per-attempt timeout.
        jitter: fraction of each sleep randomized away (0 = deterministic
            full backoff, 1 = anywhere in ``(0, step]``). Jitter only ever
            *shortens* the sleep, keeping the deadline arithmetic honest.
        deadline_s: per-operation wall budget across all attempts, sleeps
            included. Exhausting it raises
            :class:`~repro.errors.DeadlineExceededError`.
        retry_codes: server refusal codes worth retrying (refused before
            execution). ``conflict`` is deliberately not here: it reports
            a *validation outcome* the caller must handle.
        reconnect: re-dial after a lost connection (off = a lost
            connection fails all remaining attempts).
        seed: seeds the jitter RNG for reproducible schedules (chaos
            harness); None draws from the process RNG.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    jitter: float = 0.5
    deadline_s: float = 5.0
    retry_codes: Tuple[str, ...] = RETRYABLE_CODES
    reconnect: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff values must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        step = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        return step * (1.0 - self.jitter * rng.random())


class LSMClient:
    """A blocking connection to an :class:`~repro.server.server.LSMServer`.

    Args:
        host, port: the server's address (from ``server.address``).
        tenant: namespace every request is issued under.
        timeout_s: socket timeout for connect/send/recv (per attempt; a
            retry policy further clamps it to the remaining deadline).
        registry: optional metrics registry for client-observed latency.
        max_payload_bytes: frame decode limit (mirror the server's).
        trace_sampling: fraction of requests to trace end to end. A sampled
            request opens a ``client:<op>`` root span and sends its context
            on the wire, so the server's and engine's spans join it under
            one trace id.
        trace_recorder: record spans here instead of a private recorder
            (share one across clients to read the whole fleet's traces).
        retry: a :class:`RetryPolicy`; None keeps the zero-retry behavior
            (one attempt, typed errors, no idempotency tokens).
        client_id: stable identity for idempotency keys; defaults to a
            random id per client object. Reuse one id across reconnects of
            the same logical client — never across concurrent clients.
        transport: optional socket wrapper (e.g.
            :class:`repro.chaos.FaultyTransport`) applied to every dialed
            connection — the client-side injection point for network chaos.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "",
        timeout_s: float = 10.0,
        registry=None,
        max_payload_bytes: Optional[int] = None,
        trace_sampling: float = 0.0,
        trace_recorder: Optional[TraceRecorder] = None,
        retry: Optional[RetryPolicy] = None,
        client_id: Optional[str] = None,
        transport=None,
    ) -> None:
        # Every attribute is set before the first connect so close() (and
        # __exit__ after a failed construction) can never AttributeError.
        self.tenant = tenant
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self.transport = transport
        self.client_id = client_id or os.urandom(8).hex()
        self._token_counter = itertools.count(1)
        self._max_payload_bytes = max_payload_bytes
        self._registry = registry
        self._rng = random.Random(retry.seed if retry is not None else None)
        self._sock: Optional[socket.socket] = None
        self._decoder: Optional[FrameDecoder] = None
        self._closed = False
        self.stats_retries = 0
        self.stats_reconnects = 0
        self.stats_attempts = 0
        self.recorder = trace_recorder
        if self.recorder is None and trace_sampling > 0.0:
            self.recorder = TraceRecorder(sampling=trace_sampling)
        elif self.recorder is not None and trace_sampling > 0.0:
            self.recorder.sampling = trace_sampling
        self._connect()

    # -- connection plumbing ---------------------------------------------------

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.transport is not None:
            sock = self.transport.wrap(sock)
        kwargs = {}
        if self._max_payload_bytes is not None:
            kwargs["max_payload"] = self._max_payload_bytes
        # A fresh decoder per connection: buffered bytes from a dead
        # connection must never leak into the new stream.
        self._decoder = FrameDecoder(**kwargs)
        self._sock = sock

    def _drop_connection(self) -> None:
        sock, self._sock, self._decoder = self._sock, None, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def disconnect(self) -> None:
        """Drop the current connection without closing the client.

        The next call re-dials automatically (when a retry policy with
        ``reconnect`` is set, any call does; otherwise the reconnect
        happens eagerly inside the next ``_attempt``). Chaos harnesses use
        this to force a clean re-dial after a fault cycle."""
        self._drop_connection()

    def _counter(self, name: str, help_text: str):
        if self._registry is None:
            return None
        return self._registry.counter(name, help_text)

    # -- request plumbing ------------------------------------------------------

    def _call(self, op: str, request: Message, expect: type) -> Message:
        if self._closed:
            raise ReproError("operation on a closed LSMClient")
        policy = self.retry
        if policy is not None and isinstance(request, _MUTATING_TYPES):
            # One token for the whole operation: every retry re-sends the
            # same pair, which is what lets the server dedup them.
            request = dataclasses.replace(
                request, idem=(self.client_id, next(self._token_counter))
            )
        recorder = self.recorder
        span = None
        if recorder is not None and recorder.should_sample():
            # The client is the outermost span: its root decision rides the
            # wire inside the request, and the server span it spawns links
            # back here via parent_id.
            span = recorder.start(f"client:{op}")
            request = dataclasses.replace(request, trace=span.context())
        deadline = (
            time.monotonic() + policy.deadline_s if policy is not None else None
        )
        max_attempts = policy.max_attempts if policy is not None else 1
        wall0 = time.perf_counter()
        attempts = 0
        last_error: Optional[Exception] = None
        try:
            while True:
                attempts += 1
                self.stats_attempts += 1
                try:
                    response = self._attempt(request, deadline, span)
                except ConnectionLostError as exc:
                    last_error = exc
                    if (
                        policy is None
                        or not policy.reconnect
                        or attempts >= max_attempts
                    ):
                        raise
                else:
                    if isinstance(response, ErrorResponse):
                        if response.code == "conflict":
                            # Surface optimistic-concurrency losses as the
                            # same typed error every in-process handle
                            # raises, so retry loops are transport-agnostic.
                            raise ConflictError(response.message)
                        remote = RemoteError(response.code, response.message)
                        if (
                            policy is None
                            or response.code not in policy.retry_codes
                            or attempts >= max_attempts
                        ):
                            raise remote
                        last_error = remote
                    elif not isinstance(response, expect):
                        raise ProtocolError(
                            f"expected {expect.__name__}, "
                            f"got {type(response).__name__}"
                        )
                    else:
                        return response
                # A retry is due: back off (never past the deadline).
                self.stats_retries += 1
                counter = self._counter(
                    "client_retries_total", "client-side retried attempts"
                )
                if counter is not None:
                    counter.inc()
                sleep_s = policy.backoff_s(attempts, self._rng)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"{op} deadline exhausted after {attempts} attempt(s)"
                    ) from last_error
                if sleep_s > 0:
                    time.sleep(min(sleep_s, remaining))
        finally:
            total = time.perf_counter() - wall0
            if span is not None:
                recorder.finish(span, op=op, tenant=self.tenant or "default")
            if self._registry is not None:
                self._registry.histogram(
                    "client_op_wall_seconds",
                    "client-observed round-trip latency (includes retries)",
                    min_value=1e-6,
                    labels={"op": op, "tenant": self.tenant or "default"},
                ).record(total)

    def _attempt(
        self, request: Message, deadline: Optional[float], span=None
    ) -> Message:
        """One send/recv round trip; every transport symptom becomes a
        :class:`ConnectionLostError` and drops the connection."""
        if self._sock is None:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceededError("deadline exhausted before reconnect")
            try:
                self._connect()
            except OSError as exc:
                raise ConnectionLostError(f"reconnect failed: {exc}") from None
            self.stats_reconnects += 1
            counter = self._counter(
                "client_reconnects_total", "connections re-dialed after a loss"
            )
            if counter is not None:
                counter.inc()
        timeout = self.timeout_s
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError("deadline exhausted before send")
            timeout = min(timeout, remaining)
        try:
            self._sock.settimeout(timeout)
            send0 = time.perf_counter()
            send_message(self._sock, request)
            sent = time.perf_counter()
            if span is not None:
                span.add_stage("send", sent - send0)
            response = recv_message(self._sock, self._decoder)
            if span is not None:
                span.add_stage("await_reply", time.perf_counter() - sent)
        except socket.timeout:
            # The reply may still arrive later and desynchronize the
            # request/response pairing — the connection is unusable.
            self._drop_connection()
            raise ConnectionLostError("request timed out awaiting reply") from None
        except ProtocolError as exc:
            self._drop_connection()
            raise ConnectionLostError(f"reply stream corrupted: {exc}") from None
        except OSError as exc:
            self._drop_connection()
            raise ConnectionLostError(f"connection failed: {exc}") from None
        if response is None:
            self._drop_connection()
            raise ConnectionLostError("server closed the connection")
        if self._decoder.next_message() is not None:
            # A stray extra frame (e.g. duplicated delivery) would pair the
            # wrong reply with the next request on this strictly
            # request/response stream. The reply in hand is still the right
            # one for *this* request; the connection is not reusable.
            self._drop_connection()
        return response

    # -- the API ---------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness: server and engine uptime, as reported by the server."""
        pong = self._call("ping", PingRequest(tenant=self.tenant), PongResponse)
        return {
            "ok": True,
            "server_uptime_seconds": pong.server_uptime_s,
            "engine_uptime_seconds": pong.engine_uptime_s,
        }

    def stats(self) -> dict:
        """The server's full stats snapshot (parsed JSON)."""
        reply = self._call("stats", StatsRequest(tenant=self.tenant), StatsResponse)
        return json.loads(reply.payload_json)

    def stats_history(self, last_n: int = 0) -> dict:
        """The server's time-series history (parsed JSON).

        ``last_n`` limits each series to its newest ``n`` points; 0 returns
        everything the server retains. The shape is
        ``{"samples", "capacity", "series": {name: {kind, t, v, ...}}}``.
        """
        reply = self._call(
            "stats_history",
            StatsHistoryRequest(tenant=self.tenant, last_n=last_n),
            StatsHistoryResponse,
        )
        return json.loads(reply.payload_json)

    def get(self, key: bytes) -> GetResult:
        reply = self._call("get", GetRequest(tenant=self.tenant, key=key), GetResponse)
        result = GetResult()
        result.seqno = reply.seqno
        if reply.found:
            result.found = True
            result.value = reply.value
        return result

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> None:
        self._call(
            "put",
            PutRequest(tenant=self.tenant, key=key, value=value, ttl=ttl),
            OkResponse,
        )

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> None:
        """Queue a merge operand for a server-registered operator."""
        self._call(
            "merge",
            MergeRequest(
                tenant=self.tenant, key=key, operand=operand, operator=operator
            ),
            OkResponse,
        )

    def delete(self, key: bytes) -> None:
        self._call("delete", DeleteRequest(tenant=self.tenant, key=key), OkResponse)

    def multi_get(self, keys: Sequence[bytes]) -> Dict[bytes, GetResult]:
        """Batched lookup over the distinct keys, in sorted key order (the
        request is normalized client-side so every handle agrees)."""
        reply = self._call(
            "multi_get",
            MultiGetRequest(tenant=self.tenant, keys=tuple(sorted(set(keys)))),
            MultiGetResponse,
        )
        out: Dict[bytes, GetResult] = {}
        for key, found, value in reply.entries:
            result = GetResult()
            if found:
                result.found = True
                result.value = value
            out[key] = result
        return out

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: int = 1000,
    ) -> List[Tuple[bytes, bytes]]:
        """Up to ``limit`` (key, value) pairs from the inclusive range.

        Use :attr:`last_scan_truncated` to detect a limit-cut range (and
        re-issue from past the last key to page through).
        """
        reply = self._call(
            "scan",
            ScanRequest(tenant=self.tenant, start=start, end=end, limit=limit),
            ScanResponse,
        )
        self.last_scan_truncated = reply.truncated
        return list(reply.items)

    def batch(self, ops: Sequence[tuple]) -> int:
        """Apply ``(kind, key, value[, extra])`` writes atomically in order
        (one group-commit WAL frame server-side); returns the count."""
        reply = self._call(
            "batch", BatchRequest(tenant=self.tenant, ops=tuple(ops)), OkResponse
        )
        return reply.count

    def write(self, batch) -> None:
        """Apply a :class:`repro.txn.WriteBatch` (or op-tuple iterable)
        atomically — the KVStore-surface spelling of :meth:`batch`."""
        ops = list(batch)
        if ops:
            self.batch(ops)

    def commit_transaction(self, read_set: Dict[bytes, int], ops) -> int:
        """Commit an optimistic transaction over the wire.

        ``read_set`` maps keys to the ``GetResult.seqno`` fingerprints this
        client observed. Raises :class:`~repro.errors.ConflictError` when
        server-side validation fails (nothing applied).
        """
        reply = self._call(
            "txn_commit",
            TxnCommitRequest(
                tenant=self.tenant,
                read_set=tuple(dict(read_set).items()),
                ops=tuple(ops),
            ),
            OkResponse,
        )
        return reply.count

    def snapshot(self):
        """Not supported over the wire.

        A snapshot pins server-side state; the stateless request/response
        protocol has no snapshot leases. Remote transactions therefore run
        with ``snapshot_reads=False`` (see :meth:`transaction`).
        """
        raise NotImplementedError(
            "LSMClient cannot pin a server-side snapshot; use transaction() "
            "(live reads + commit validation) or an in-process handle"
        )

    def transaction(self) -> "Transaction":
        """Begin an optimistic transaction over this connection.

        Remote transactions read *live committed state* rather than a pinned
        snapshot (``snapshot_reads=False``): each read records the
        server-reported seqno, so commit validation still catches every
        concurrent writer, but two reads inside one transaction may observe
        different commit points — weaker than the snapshot isolation the
        in-process handles provide.
        """
        from repro.txn import Transaction

        return Transaction(self, snapshot_reads=False)

    # -- lifecycle -------------------------------------------------------------

    def retry_stats(self) -> Dict[str, int]:
        """Cumulative attempt/retry/reconnect counts for this client."""
        return {
            "attempts": self.stats_attempts,
            "retries": self.stats_retries,
            "reconnects": self.stats_reconnects,
        }

    def close(self) -> None:
        """Idempotent: safe to call twice, from ``__exit__`` after an error,
        and even when construction failed before the socket existed."""
        if self._closed:
            return
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "LSMClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
