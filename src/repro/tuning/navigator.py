"""The design-space navigator: enumerate, price, and rank configurations.

The tutorial's Module III message is that the (T, K, Z, memory) space is
navigable with a cost model: given a workload, enumerate candidate design
points, price each, and return the best (or the whole Pareto frontier over
read and write costs, which is the tradeoff curve of experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.tuning.cost_model import CostModel, DesignPoint, Workload


@dataclass(frozen=True)
class RankedDesign:
    """A priced design point."""

    point: DesignPoint
    cost: float
    read_cost: float
    write_cost: float


class DesignNavigator:
    """Enumerates the (T, K, Z) continuum and ranks it for a workload.

    Args:
        model: the cost model (fixes N, E, buffer, block size).
        size_ratios: candidate T values.
        include_hybrids: also enumerate intermediate (K, Z) hybrids, not just
            the three canonical corner designs.
    """

    def __init__(
        self,
        model: CostModel,
        size_ratios: Sequence[int] = (2, 3, 4, 6, 8, 10),
        include_hybrids: bool = False,
        bits_per_key: float = 10.0,
    ) -> None:
        self._model = model
        self._size_ratios = list(size_ratios)
        self._include_hybrids = include_hybrids
        self._bits = bits_per_key

    def candidates(self) -> Iterable[DesignPoint]:
        """Every design point the navigator considers."""
        for ratio in self._size_ratios:
            yield DesignPoint.leveling(ratio, self._bits)
            yield DesignPoint.tiering(ratio, self._bits)
            yield DesignPoint.lazy_leveling(ratio, self._bits)
            if self._include_hybrids:
                for inner in range(1, ratio):
                    for last in range(1, ratio):
                        if (inner, last) in ((1, 1), (ratio - 1, ratio - 1), (ratio - 1, 1)):
                            continue
                        yield DesignPoint(
                            ratio, inner, last, self._bits,
                            name=f"hybrid(T={ratio},K={inner},Z={last})",
                        )

    def rank(self, workload: Workload, top: Optional[int] = None) -> List[RankedDesign]:
        """All candidates priced for the workload, cheapest first."""
        ranked = [self._price(point, workload) for point in self.candidates()]
        ranked.sort(key=lambda r: r.cost)
        return ranked[:top] if top is not None else ranked

    def best(self, workload: Workload) -> RankedDesign:
        """The cheapest design for the workload."""
        return self.rank(workload, top=1)[0]

    def tradeoff_curve(self) -> List[Tuple[float, float, DesignPoint]]:
        """The read/write Pareto frontier: (read_cost, write_cost, point).

        Read cost here is the zero-result lookup cost (the filter-dominated
        metric Monkey optimizes); write cost is the amortized insert cost.
        """
        priced = []
        for point in self.candidates():
            read = self._model.zero_result_lookup_cost(point)
            write = self._model.write_cost(point)
            priced.append((read, write, point))
        priced.sort(key=lambda item: (item[0], item[1]))
        frontier: List[Tuple[float, float, DesignPoint]] = []
        best_write = float("inf")
        for read, write, point in priced:
            if write < best_write:
                frontier.append((read, write, point))
                best_write = write
        return frontier

    # -- internals -----------------------------------------------------------

    def _price(self, point: DesignPoint, workload: Workload) -> RankedDesign:
        read = (
            workload.zero_lookups * self._model.zero_result_lookup_cost(point)
            + workload.lookups * self._model.lookup_cost(point)
            + workload.short_ranges * self._model.short_range_cost(point)
            + workload.long_ranges * self._model.long_range_cost(point)
        )
        write = workload.writes * self._model.write_cost(point)
        return RankedDesign(point, read + write, read, write)
