"""Analytic I/O cost model for the (T, K, Z) design continuum.

Follows the Monkey (Dayan et al., SIGMOD 2017) and Dostoevsky (Dayan &
Idreos, SIGMOD 2018) analyses. A configuration is a :class:`DesignPoint`;
a :class:`Workload` weights the four canonical operation classes; the
:class:`CostModel` prices each operation in expected storage I/Os:

* zero-result point lookup: sum of false-positive rates over all runs;
* existing point lookup: 1 + the false positives of the runs above the match;
* short range lookup (seeks dominate): one seek per qualifying run;
* long range lookup (scan dominates): ~ s/B blocks per level, xK for tiered;
* write, amortized per entry: each entry is rewritten ~T/(K+1) times per
  level over L levels, divided by B entries per block.

These are the formulas experiment E13 validates against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.errors import TuningError
from repro.filters.bloom import theoretical_fpr


@dataclass(frozen=True)
class Workload:
    """Fractions of the four canonical operation classes (sum to 1).

    Attributes:
        zero_lookups: point lookups for absent keys (filter-dominated).
        lookups: point lookups for existing keys.
        short_ranges: range lookups dominated by per-run seeks.
        long_ranges_selectivity: page selectivity of long ranges (0 disables).
        writes: inserts/updates/deletes.
        long_ranges: fraction of long range queries.
    """

    zero_lookups: float = 0.25
    lookups: float = 0.25
    short_ranges: float = 0.0
    long_ranges: float = 0.0
    writes: float = 0.5
    long_ranges_selectivity: float = 0.0

    def __post_init__(self) -> None:
        total = (
            self.zero_lookups + self.lookups + self.short_ranges + self.long_ranges + self.writes
        )
        if abs(total - 1.0) > 1e-6:
            raise TuningError(f"workload fractions must sum to 1, got {total}")
        if any(
            f < 0
            for f in (
                self.zero_lookups,
                self.lookups,
                self.short_ranges,
                self.long_ranges,
                self.writes,
            )
        ):
            raise TuningError("workload fractions must be non-negative")

    def as_vector(self) -> "List[float]":
        return [self.zero_lookups, self.lookups, self.short_ranges, self.long_ranges, self.writes]

    @staticmethod
    def from_vector(vector: Sequence[float]) -> "Workload":
        z0, z1, qs, ql, w = vector
        return Workload(
            zero_lookups=z0, lookups=z1, short_ranges=qs, long_ranges=ql, writes=w
        )


@dataclass(frozen=True)
class DesignPoint:
    """One LSM configuration, in model terms.

    Attributes:
        size_ratio: T.
        inner_runs: K (runs tolerated per inner level).
        last_runs: Z (runs tolerated at the last level).
        bits_per_key: scalar, or per-level sequence (Monkey).
        name: label for experiment tables.
    """

    size_ratio: int = 4
    inner_runs: int = 1
    last_runs: int = 1
    bits_per_key: Union[float, Sequence[float]] = 10.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.size_ratio < 2:
            raise TuningError("size_ratio must be at least 2")
        if self.inner_runs < 1 or self.last_runs < 1:
            raise TuningError("run bounds must be at least 1")

    @staticmethod
    def leveling(size_ratio: int, bits_per_key=10.0) -> "DesignPoint":
        return DesignPoint(size_ratio, 1, 1, bits_per_key, name="leveling")

    @staticmethod
    def tiering(size_ratio: int, bits_per_key=10.0) -> "DesignPoint":
        return DesignPoint(
            size_ratio, size_ratio - 1, size_ratio - 1, bits_per_key, name="tiering"
        )

    @staticmethod
    def lazy_leveling(size_ratio: int, bits_per_key=10.0) -> "DesignPoint":
        return DesignPoint(size_ratio, size_ratio - 1, 1, bits_per_key, name="lazy_leveling")


class CostModel:
    """Prices operations for a data size and design point.

    Args:
        num_entries: N — total entries resident in the tree.
        entry_bytes: E — bytes per entry.
        buffer_bytes: M_buf — memtable capacity in bytes.
        block_bytes: B·E — storage block size in bytes.
    """

    def __init__(
        self,
        num_entries: int,
        entry_bytes: int = 64,
        buffer_bytes: int = 1 << 20,
        block_bytes: int = 4096,
    ) -> None:
        if min(num_entries, entry_bytes, buffer_bytes, block_bytes) <= 0:
            raise TuningError("model parameters must be positive")
        self.num_entries = num_entries
        self.entry_bytes = entry_bytes
        self.buffer_bytes = buffer_bytes
        self.block_bytes = block_bytes
        self.entries_per_block = max(1, block_bytes // entry_bytes)
        self.buffer_entries = max(1, buffer_bytes // entry_bytes)

    # -- shape ------------------------------------------------------------------

    def num_levels(self, point: DesignPoint) -> int:
        """L = ceil(log_T(N / buffer_entries)), at least 1."""
        ratio = self.num_entries / self.buffer_entries
        if ratio <= 1:
            return 1
        return max(1, math.ceil(math.log(ratio, point.size_ratio)))

    def entries_at_level(self, point: DesignPoint, level: int) -> int:
        """Capacity of ``level`` (1-based), in entries."""
        return self.buffer_entries * point.size_ratio ** level

    def runs_per_level(self, point: DesignPoint, level: int, total_levels: int) -> int:
        return point.last_runs if level == total_levels else point.inner_runs

    def level_fpr(self, point: DesignPoint, level: int) -> float:
        bits = self._bits_at(point, level)
        return theoretical_fpr(bits)

    # -- per-operation costs ---------------------------------------------------------

    def zero_result_lookup_cost(self, point: DesignPoint) -> float:
        """Expected I/Os: sum of run false-positive rates."""
        levels = self.num_levels(point)
        cost = 0.0
        for level in range(1, levels + 1):
            runs = self.runs_per_level(point, level, levels)
            cost += runs * self.level_fpr(point, level)
        return cost

    def lookup_cost(self, point: DesignPoint) -> float:
        """Expected I/Os for an existing key (assumed at the last level).

        1 I/O for the true hit plus false positives at the runs above it —
        the standard worst-case-location assumption of Monkey.
        """
        levels = self.num_levels(point)
        cost = 1.0
        for level in range(1, levels + 1):
            runs = self.runs_per_level(point, level, levels)
            fpr = self.level_fpr(point, level)
            if level == levels:
                cost += max(0, runs - 1) * fpr
            else:
                cost += runs * fpr
        return cost

    def short_range_cost(self, point: DesignPoint) -> float:
        """One seek per run: filters cannot help a plain range query."""
        levels = self.num_levels(point)
        return float(
            sum(self.runs_per_level(point, level, levels) for level in range(1, levels + 1))
        )

    def long_range_cost(self, point: DesignPoint, selectivity: float = 1e-4) -> float:
        """Seeks plus ~selectivity·level_size/B sequential blocks per level."""
        levels = self.num_levels(point)
        cost = self.short_range_cost(point)
        for level in range(1, levels + 1):
            entries = min(self.entries_at_level(point, level), self.num_entries)
            cost += selectivity * entries / self.entries_per_block
        return cost

    def write_cost(self, point: DesignPoint) -> float:
        """Amortized I/Os per inserted entry.

        Each entry is copied once per level arrival plus ~(T-1)/(K+1) in-level
        re-merges (leveling: T-1 rewrites; tiering: ~1 write per level),
        all divided by B entries per block. Matches Dostoevsky's
        O((T-1)/(K+1) + (T-1)/Z) per-level behaviour up to constants.
        """
        levels = self.num_levels(point)
        per_level_inner = 1.0 + (point.size_ratio - 1.0) / (point.inner_runs + 1.0)
        per_level_last = 1.0 + (point.size_ratio - 1.0) / (point.last_runs + 1.0)
        copies = per_level_inner * max(0, levels - 1) + per_level_last
        return copies / self.entries_per_block

    def write_amplification(self, point: DesignPoint) -> float:
        """Bytes written per user byte: the write cost times B."""
        return self.write_cost(point) * self.entries_per_block

    # -- aggregate --------------------------------------------------------------------

    def workload_cost(self, point: DesignPoint, workload: Workload) -> float:
        """Expected I/Os per operation under the workload mix."""
        selectivity = workload.long_ranges_selectivity or 1e-4
        return (
            workload.zero_lookups * self.zero_result_lookup_cost(point)
            + workload.lookups * self.lookup_cost(point)
            + workload.short_ranges * self.short_range_cost(point)
            + workload.long_ranges * self.long_range_cost(point, selectivity)
            + workload.writes * self.write_cost(point)
        )

    # -- internals -----------------------------------------------------------------------

    def _bits_at(self, point: DesignPoint, level: int) -> float:
        if isinstance(point.bits_per_key, (int, float)):
            return float(point.bits_per_key)
        bits = list(point.bits_per_key)
        return float(bits[min(level - 1, len(bits) - 1)])
