"""Distribution-aware cost modeling (tutorial §III-1; Cosine, VLDB 2022).

Monkey/Dostoevsky-style models price the *worst case*: every lookup pays
storage I/O. Cosine's departure, reproduced here, is a model aware of the
access distribution and the cache: under a zipfian workload, the cache
absorbs the hot mass, so the expected existing-lookup cost is the worst-case
cost scaled by the cache *miss* rate. The gap between the two models grows
with skew — exactly why worst-case navigation picks wrong designs for
skewed workloads (experiment E17 quantifies both predictions against the
simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TuningError
from repro.tuning.cost_model import CostModel, DesignPoint, Workload


def zipf_top_mass(keyspace: int, top: int, theta: float) -> float:
    """Fraction of zipfian probability mass on the ``top`` hottest keys.

    H_{top,theta} / H_{keyspace,theta}, with the harmonic sums computed
    exactly up to a cutoff and by integral approximation beyond — the same
    scheme the workload generator uses, so model and generator agree.
    """
    if keyspace <= 0:
        raise TuningError("keyspace must be positive")
    if not 0 < theta < 1:
        raise TuningError("theta must be in (0, 1)")
    top = max(0, min(top, keyspace))
    if top == 0:
        return 0.0
    return _zeta(top, theta) / _zeta(keyspace, theta)


def _zeta(n: int, theta: float) -> float:
    cutoff = min(n, 10_000)
    total = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
    if n > cutoff:
        total += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) / (1 - theta)
    return total


@dataclass
class SkewAwareCostModel:
    """Wraps a worst-case :class:`CostModel` with cache+skew awareness.

    Args:
        base: the worst-case model (fixes N, E, buffer, block size).
        cache_bytes: block-cache budget.
        theta: zipfian skew of the read workload.

    The cache is modeled as holding one hot key's block per cached block
    (scrambled zipfian spreads hot keys across blocks), so the expected
    hit rate for existing lookups is the zipf mass of the hottest
    ``cache_bytes / block_bytes`` keys. Zero-result lookups and writes do
    not benefit (absent keys cache nothing; writes are buffered anyway).
    """

    base: CostModel
    cache_bytes: int
    theta: float = 0.99

    def __post_init__(self) -> None:
        if self.cache_bytes < 0:
            raise TuningError("cache_bytes must be non-negative")
        if not 0 < self.theta < 1:
            raise TuningError("theta must be in (0, 1)")

    @property
    def expected_hit_rate(self) -> float:
        cached_keys = self.cache_bytes // self.base.block_bytes
        return zipf_top_mass(self.base.num_entries, cached_keys, self.theta)

    def lookup_cost(self, point: DesignPoint) -> float:
        """Expected I/Os per existing lookup: worst case x miss rate."""
        return (1.0 - self.expected_hit_rate) * self.base.lookup_cost(point)

    def zero_result_lookup_cost(self, point: DesignPoint) -> float:
        """Unchanged: absent keys leave nothing cacheable behind the filters."""
        return self.base.zero_result_lookup_cost(point)

    def workload_cost(self, point: DesignPoint, workload: Workload) -> float:
        """Expected I/Os per operation with the lookup discount applied."""
        worst = self.base.workload_cost(point, workload)
        discount = workload.lookups * self.expected_hit_rate * self.base.lookup_cost(point)
        return worst - discount

    # -- CostModel pass-throughs so the navigator can use this model drop-in --

    def short_range_cost(self, point: DesignPoint) -> float:
        return self.base.short_range_cost(point)

    def long_range_cost(self, point: DesignPoint, selectivity: float = 1e-4) -> float:
        return self.base.long_range_cost(point, selectivity)

    def write_cost(self, point: DesignPoint) -> float:
        return self.base.write_cost(point)

    def num_levels(self, point: DesignPoint) -> int:
        return self.base.num_levels(point)
