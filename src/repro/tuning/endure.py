"""Endure-style robust tuning under workload uncertainty (Huynh et al.,
VLDB 2022).

Cloud workloads drift: the workload the system is tuned for (w0) and the one
it observes (w) differ. Endure replaces "minimize cost at w0" with
"minimize the worst cost over a KL-divergence ball around w0":

    min_design  max_{w : KL(w || w0) <= eta}  cost(design, w)

The inner maximization has a closed-form dual: the worst-case workload tilts
w0 exponentially toward the design's expensive operations,
``w_i ∝ w0_i · exp(c_i / λ)``, with λ >= 0 chosen so the KL constraint is
tight (found here by bisection). The outer minimization enumerates the same
candidate grid the navigator uses.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TuningError
from repro.tuning.cost_model import CostModel, DesignPoint, Workload


def _operation_costs(model: CostModel, point: DesignPoint, selectivity: float) -> np.ndarray:
    """Per-operation-class costs, aligned with Workload.as_vector()."""
    return np.array(
        [
            model.zero_result_lookup_cost(point),
            model.lookup_cost(point),
            model.short_range_cost(point),
            model.long_range_cost(point, selectivity),
            model.write_cost(point),
        ]
    )


def kl_divergence(w: Sequence[float], w0: Sequence[float]) -> float:
    """KL(w || w0) over workload simplices (0·log0 = 0)."""
    total = 0.0
    for wi, w0i in zip(w, w0):
        if wi > 0:
            if w0i <= 0:
                return math.inf
            total += wi * math.log(wi / w0i)
    return total


def kl_worst_case_workload(
    costs: Sequence[float], w0: Sequence[float], eta: float
) -> "Tuple[List[float], float]":
    """The cost-maximizing workload in the KL ball around ``w0``.

    Args:
        costs: per-class costs of the design under consideration.
        w0: the expected workload (simplex vector).
        eta: KL radius; 0 returns w0 itself.

    Returns:
        (worst-case workload, its expected cost).
    """
    if eta < 0:
        raise TuningError("eta must be non-negative")
    costs_arr = np.asarray(costs, dtype=np.float64)
    w0_arr = np.asarray(w0, dtype=np.float64)
    if eta == 0 or np.ptp(costs_arr[w0_arr > 0]) < 1e-12:
        return list(w0_arr), float(np.dot(costs_arr, w0_arr))

    # KL(w || w0) is finite only on w0's support: classes with zero nominal
    # probability can never gain mass, so the tilt normalizes over the
    # support's maximum cost (not the global maximum).
    support_max = float(costs_arr[w0_arr > 0].max())

    def tilt(lam: float) -> np.ndarray:
        exponent = np.where(w0_arr > 0, (costs_arr - support_max) / lam, -np.inf)
        weights = w0_arr * np.exp(exponent)
        return weights / weights.sum()

    def kl_at(lam: float) -> float:
        return kl_divergence(tilt(lam), list(w0_arr))

    # KL(tilt(λ) || w0) decreases in λ: large λ ≈ no tilt (KL→0), small λ
    # concentrates on the most expensive class (KL→ -ln w0_max < ∞ possibly
    # below eta, in which case the ball is slack and the vertex is optimal).
    lam_hi = 1e6 * max(1.0, float(costs_arr.max()))
    lam_lo = 1e-9 * max(1.0, float(costs_arr.max()))
    if kl_at(lam_lo) <= eta:
        w = tilt(lam_lo)
        return list(w), float(np.dot(costs_arr, w))
    for _ in range(200):
        mid = math.sqrt(lam_lo * lam_hi)
        if kl_at(mid) > eta:
            lam_lo = mid
        else:
            lam_hi = mid
    w = tilt(lam_hi)
    return list(w), float(np.dot(costs_arr, w))


def nominal_tuning(
    model: CostModel,
    w0: Workload,
    candidates: Iterable[DesignPoint],
    selectivity: float = 1e-4,
) -> "Tuple[DesignPoint, float]":
    """Classic tuning: the design minimizing expected cost at w0."""
    best: Optional[Tuple[DesignPoint, float]] = None
    w0_vec = np.asarray(w0.as_vector())
    for point in candidates:
        cost = float(np.dot(_operation_costs(model, point, selectivity), w0_vec))
        if best is None or cost < best[1]:
            best = (point, cost)
    if best is None:
        raise TuningError("no candidate designs supplied")
    return best


def robust_tuning(
    model: CostModel,
    w0: Workload,
    candidates: Iterable[DesignPoint],
    eta: float,
    selectivity: float = 1e-4,
) -> "Tuple[DesignPoint, float]":
    """Endure: the design minimizing worst-case cost over the KL ball.

    Returns:
        (design, its worst-case cost at radius eta).
    """
    best: Optional[Tuple[DesignPoint, float]] = None
    w0_vec = w0.as_vector()
    for point in candidates:
        costs = _operation_costs(model, point, selectivity)
        _, worst = kl_worst_case_workload(costs, w0_vec, eta)
        if best is None or worst < best[1]:
            best = (point, worst)
    if best is None:
        raise TuningError("no candidate designs supplied")
    return best


def evaluate_under_drift(
    model: CostModel,
    point: DesignPoint,
    observed: Workload,
    selectivity: float = 1e-4,
) -> float:
    """Expected cost of a (possibly mis-)tuned design at an observed workload."""
    costs = _operation_costs(model, point, selectivity)
    return float(np.dot(costs, np.asarray(observed.as_vector())))
