"""Cost models and tuning: navigating the LSM design space (Module III).

The analytic model (:mod:`~repro.tuning.cost_model`) prices any (T, K, Z,
bits, buffer) configuration in expected I/Os per operation, following the
Monkey/Dostoevsky analyses. On top of it:

* :mod:`~repro.tuning.monkey` — optimal filter-memory allocation across levels;
* :mod:`~repro.tuning.memory` — buffer-vs-filter memory splitting;
* :mod:`~repro.tuning.navigator` — enumerate and rank whole configurations;
* :mod:`~repro.tuning.endure` — robust tuning under workload uncertainty.
"""

from repro.tuning.cost_model import CostModel, DesignPoint, Workload
from repro.tuning.monkey import monkey_allocation, uniform_allocation
from repro.tuning.memory import optimize_memory_split
from repro.tuning.navigator import DesignNavigator
from repro.tuning.endure import kl_worst_case_workload, nominal_tuning, robust_tuning
from repro.tuning.skew_model import SkewAwareCostModel, zipf_top_mass

__all__ = [
    "SkewAwareCostModel",
    "zipf_top_mass",
    "CostModel",
    "DesignPoint",
    "Workload",
    "monkey_allocation",
    "uniform_allocation",
    "optimize_memory_split",
    "DesignNavigator",
    "nominal_tuning",
    "robust_tuning",
    "kl_worst_case_workload",
]
