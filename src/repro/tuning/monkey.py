"""Monkey: optimal Bloom-filter memory allocation across levels.

Dayan et al. (SIGMOD 2017) showed that giving every level the same bits/key —
the production default — is suboptimal: the last level holds ~ (T-1)/T of all
entries yet contributes just as much false-positive mass per run as the tiny
first level. Minimizing the *sum* of run FPRs under a total memory budget
pushes memory toward the smaller (shallower) levels, making their FPRs
exponentially smaller, and may assign deep levels zero memory.

Two solvers are provided: a closed-form waterfilling derived from the
Lagrangian of ``min Σ n_i·exp(-ln2²·m_i/n_i) s.t. Σ m_i = M`` (the FPR of an
optimal Bloom filter with m_i bits over n_i keys is exp(-ln2²·m_i/n_i)), and
a numeric check via scipy. The closed form is exact for this objective.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np
from scipy import optimize

from repro.errors import TuningError

_LN2_SQ = math.log(2) ** 2


def uniform_allocation(total_bits: float, level_entries: Sequence[int]) -> List[float]:
    """The production baseline: the same bits/key everywhere."""
    total_entries = sum(level_entries)
    if total_entries <= 0:
        raise TuningError("need at least one entry")
    bits_per_key = total_bits / total_entries
    return [bits_per_key for _ in level_entries]


def monkey_allocation(
    total_bits: float,
    level_entries: Sequence[int],
    runs_per_level: Sequence[int] = None,
) -> List[float]:
    """Optimal per-level bits/key under a total filter-memory budget.

    Minimizes ``Σ r_i · exp(-ln2²·b_i)`` subject to ``Σ n_i·b_i = M`` and
    ``b_i >= 0`` via the exact KKT waterfilling:
    ``b_i = A - ln(n_i / r_i)/ln2²`` on the active set.

    Args:
        total_bits: M — total filter bits available.
        level_entries: n_i — entries per level, shallowest first.
        runs_per_level: r_i — runs at each level (1 for leveling; T-1 for
            tiered levels). Defaults to all-ones.

    Returns:
        bits/key per level; deep levels may get 0.0, meaning "no filter at
        this level", exactly as Monkey prescribes.
    """
    if total_bits < 0:
        raise TuningError("total_bits must be non-negative")
    entries = [float(n) for n in level_entries]
    if not entries or any(n <= 0 for n in entries):
        raise TuningError("level_entries must be positive")
    runs = [1.0] * len(entries) if runs_per_level is None else [float(r) for r in runs_per_level]
    if len(runs) != len(entries) or any(r < 1 for r in runs):
        raise TuningError("runs_per_level must align with level_entries and be >= 1")

    c = _LN2_SQ
    active = list(range(len(entries)))
    while active:
        total_n = sum(entries[i] for i in active)
        weighted_log = sum(entries[i] * math.log(entries[i] / runs[i]) for i in active)
        a_const = (total_bits + weighted_log / c) / total_n
        alloc = {i: a_const - math.log(entries[i] / runs[i]) / c for i in active}
        negative = [i for i in active if alloc[i] <= 0]
        if not negative:
            bits = [0.0] * len(entries)
            for i in active:
                bits[i] = alloc[i]
            return bits
        # Deactivate the levels KKT priced below zero and re-solve.
        active = [i for i in active if i not in negative]
    return [0.0] * len(entries)


def monkey_allocation_numeric(
    total_bits: float, level_entries: Sequence[int]
) -> List[float]:
    """Numeric cross-check of :func:`monkey_allocation` via scipy SLSQP."""
    entries = np.asarray(level_entries, dtype=np.float64)
    if entries.min() <= 0:
        raise TuningError("level_entries must be positive")

    def total_fpr(bits_vec: np.ndarray) -> float:
        return float(np.sum(np.exp(-_LN2_SQ * bits_vec)))

    start = np.full(len(entries), total_bits / entries.sum())
    constraint = {"type": "eq", "fun": lambda b: float(np.dot(b, entries) - total_bits)}
    bounds = [(0.0, None)] * len(entries)
    result = optimize.minimize(
        total_fpr, start, bounds=bounds, constraints=[constraint], method="SLSQP"
    )
    if not result.success:
        raise TuningError(f"numeric Monkey optimization failed: {result.message}")
    return [float(b) for b in result.x]


def expected_zero_lookup_cost(
    bits_per_level: Sequence[float], runs_per_level: Sequence[int]
) -> float:
    """Σ runs_i · exp(-ln2²·bits_i): the model cost Monkey minimizes."""
    if len(bits_per_level) != len(runs_per_level):
        raise TuningError("bits and runs vectors must align")
    return sum(
        runs * math.exp(-_LN2_SQ * bits)
        for bits, runs in zip(bits_per_level, runs_per_level)
    )


def level_entry_counts(
    num_entries: int, buffer_entries: int, size_ratio: int
) -> List[int]:
    """Entries per level for a tree of N entries (shallowest first)."""
    if min(num_entries, buffer_entries, size_ratio) <= 0 or size_ratio < 2:
        raise TuningError("invalid tree shape parameters")
    counts: List[int] = []
    remaining = num_entries
    level = 1
    while remaining > 0:
        capacity = buffer_entries * size_ratio ** level
        take = min(remaining, capacity)
        counts.append(take)
        remaining -= take
        level += 1
    return counts or [num_entries]
