"""Memory allocation between the write buffer and the Bloom filters.

Monkey's second contribution (and Luo & Carey's memory-wall line of work,
tutorial §II-B.5): with a fixed memory budget M, every byte given to the
buffer deepens nothing (it *shrinks* L and the write cost) while every byte
given to filters cuts lookup false positives. The optimum is interior and
workload-dependent; experiment E11 measures the real engine against this
optimizer's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TuningError
from repro.tuning.cost_model import CostModel, DesignPoint, Workload
from repro.tuning.monkey import level_entry_counts, monkey_allocation


@dataclass(frozen=True)
class MemorySplit:
    """One evaluated split of the memory budget."""

    buffer_bytes: int
    filter_bits_total: float
    bits_per_level: "tuple[float, ...]"
    cost: float


def optimize_memory_split(
    total_memory_bytes: int,
    num_entries: int,
    workload: Workload,
    design: Optional[DesignPoint] = None,
    entry_bytes: int = 64,
    block_bytes: int = 4096,
    min_buffer_bytes: int = 4096,
    steps: int = 32,
    use_monkey: bool = True,
) -> MemorySplit:
    """Find the buffer/filter split minimizing the model cost.

    Sweeps the buffer share geometrically between ``min_buffer_bytes`` and the
    whole budget, allocating the remainder to filters (Monkey-optimally by
    default), and returns the cheapest split.

    Raises:
        TuningError: if the budget cannot even hold the minimum buffer.
    """
    if total_memory_bytes <= min_buffer_bytes:
        raise TuningError("memory budget smaller than the minimum buffer")
    if design is None:
        design = DesignPoint.leveling(4)
    if steps < 2:
        raise TuningError("need at least 2 sweep steps")

    best: Optional[MemorySplit] = None
    ratio = (total_memory_bytes / min_buffer_bytes) ** (1.0 / (steps - 1))
    for step in range(steps):
        buffer_bytes = int(min_buffer_bytes * ratio ** step)
        buffer_bytes = min(buffer_bytes, total_memory_bytes)
        filter_bits = max(0.0, (total_memory_bytes - buffer_bytes) * 8.0)
        model = CostModel(
            num_entries,
            entry_bytes=entry_bytes,
            buffer_bytes=buffer_bytes,
            block_bytes=block_bytes,
        )
        entries = level_entry_counts(
            num_entries, model.buffer_entries, design.size_ratio
        )
        if use_monkey:
            levels = len(entries)
            runs = [
                design.last_runs if level == levels else design.inner_runs
                for level in range(1, levels + 1)
            ]
            bits = monkey_allocation(filter_bits, entries, runs_per_level=runs)
        else:
            total_entries = sum(entries)
            bits = [filter_bits / total_entries] * len(entries)
        point = DesignPoint(
            size_ratio=design.size_ratio,
            inner_runs=design.inner_runs,
            last_runs=design.last_runs,
            bits_per_key=tuple(bits),
            name=design.name,
        )
        cost = model.workload_cost(point, workload)
        candidate = MemorySplit(buffer_bytes, filter_bits, tuple(bits), cost)
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None
    return best
