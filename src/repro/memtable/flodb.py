"""FloDB-style two-level memory buffer (Balmau et al., EuroSys 2017).

A small hash-map *front* level absorbs writes in O(1). When the front level
fills, its entries drain in bulk into a skiplist *back* level (amortizing the
O(log n) skiplist maintenance over a batch, as FloDB does). Point lookups
check the front hash first (O(1)) and then the back skiplist; scans force a
drain so they see one sorted structure.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.entry import Entry
from repro.memtable.base import Memtable
from repro.memtable.skiplist import SkipList


class FloDBMemtable(Memtable):
    """Two-level buffer: hash front + skiplist back.

    Args:
        front_capacity: max distinct keys buffered in the hash level before a
            drain into the skiplist level.
    """

    def __init__(self, front_capacity: int = 1024, seed: int = 0xC0FFEE) -> None:
        if front_capacity <= 0:
            raise ValueError("front_capacity must be positive")
        self._front: Dict[bytes, Entry] = {}
        self._back = SkipList(seed=seed)
        self._front_capacity = front_capacity
        self._size_bytes = 0
        self.drains = 0  # observable for tests/experiments

    def put(self, entry: Entry) -> None:
        displaced = self._front.get(entry.key)
        self._front[entry.key] = entry
        self._size_bytes += entry.approximate_size
        if displaced is not None:
            self._size_bytes -= displaced.approximate_size
        if len(self._front) >= self._front_capacity:
            self._drain()

    def get(self, key: bytes) -> Optional[Entry]:
        entry = self._front.get(key)
        if entry is not None:
            return entry
        return self._back.find(key)

    def scan(self, start: Optional[bytes] = None, end: Optional[bytes] = None) -> Iterator[Entry]:
        if self._front:
            self._drain()
        for entry in self._back.iter_from(start):
            if end is not None and entry.key > end:
                return
            yield entry

    def __len__(self) -> int:
        overlap = sum(1 for key in self._front if self._back.find(key) is not None)
        return len(self._front) + len(self._back) - overlap

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def clear(self) -> None:
        self._front.clear()
        self._back = SkipList()
        self._size_bytes = 0

    # -- internals -----------------------------------------------------------

    def _drain(self) -> None:
        """Bulk-move the front hash into the back skiplist, newest wins."""
        for entry in self._front.values():
            displaced = self._back.insert(entry)
            if displaced is not None:
                self._size_bytes -= displaced.approximate_size
        self._front.clear()
        self.drains += 1
