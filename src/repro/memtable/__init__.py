"""In-memory write buffers (Level 0 of the LSM).

The tutorial notes that varying the buffer implementation is itself a design
knob (§II-A.2, §II-B.5). Three implementations are provided behind one ABC:

* :class:`~repro.memtable.skiplist.SkipListMemtable` — the classic probabilistic
  skiplist used by LevelDB/RocksDB; O(log n) insert and lookup, sorted scans.
* :class:`~repro.memtable.vector.VectorMemtable` — an append vector sorted at
  flush time; O(1) insert, O(n) lookup; models write-optimized buffers.
* :class:`~repro.memtable.flodb.FloDBMemtable` — FloDB's two-level buffer: a
  small hash front level absorbing writes at O(1) with a sorted skiplist back
  level, giving fast inserts *and* fast point lookups.
"""

from repro.memtable.base import Memtable
from repro.memtable.skiplist import SkipList, SkipListMemtable
from repro.memtable.vector import VectorMemtable
from repro.memtable.flodb import FloDBMemtable

MEMTABLE_KINDS = {
    "skiplist": SkipListMemtable,
    "vector": VectorMemtable,
    "flodb": FloDBMemtable,
}


def make_memtable(kind: str) -> Memtable:
    """Instantiate a memtable by its registry name.

    Raises:
        KeyError: for unknown kinds (the valid names are the keys of
        ``MEMTABLE_KINDS``).
    """
    try:
        return MEMTABLE_KINDS[kind]()
    except KeyError:
        raise KeyError(
            f"unknown memtable kind {kind!r}; expected one of {sorted(MEMTABLE_KINDS)}"
        ) from None


__all__ = [
    "Memtable",
    "SkipList",
    "SkipListMemtable",
    "VectorMemtable",
    "FloDBMemtable",
    "MEMTABLE_KINDS",
    "make_memtable",
]
