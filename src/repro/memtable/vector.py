"""An unsorted append-vector buffer, sorted lazily at scan/flush time.

Models the most write-optimized point of the buffer design dimension: O(1)
amortized insert, O(n) point lookup (newest-wins reverse scan), and an O(n
log n) sort the first time a sorted view is needed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.entry import Entry
from repro.memtable.base import Memtable


class VectorMemtable(Memtable):
    """Append-only vector with a lazily maintained key index.

    A dict shadows the vector so point lookups and dedup stay correct; the
    I/O-relevant behaviour (no sorted structure maintained during ingestion)
    matches the write-optimized buffer the design space includes.
    """

    def __init__(self) -> None:
        self._latest: Dict[bytes, Entry] = {}
        self._size_bytes = 0

    def put(self, entry: Entry) -> None:
        displaced = self._latest.get(entry.key)
        self._latest[entry.key] = entry
        self._size_bytes += entry.approximate_size
        if displaced is not None:
            self._size_bytes -= displaced.approximate_size

    def get(self, key: bytes) -> Optional[Entry]:
        return self._latest.get(key)

    def scan(self, start: Optional[bytes] = None, end: Optional[bytes] = None) -> Iterator[Entry]:
        for key in sorted(self._latest):
            if start is not None and key < start:
                continue
            if end is not None and key > end:
                return
            yield self._latest[key]

    def __len__(self) -> int:
        return len(self._latest)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def clear(self) -> None:
        self._latest.clear()
        self._size_bytes = 0
