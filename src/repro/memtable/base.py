"""The memtable contract shared by every buffer implementation."""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from repro.common.entry import Entry


class Memtable(abc.ABC):
    """A mutable in-memory buffer of the newest entries.

    The memtable holds at most one entry per key — a newer put/delete for a
    key replaces the older in place (the replaced entry is already superseded,
    so dropping it early is safe and is what production engines do).
    """

    @abc.abstractmethod
    def put(self, entry: Entry) -> None:
        """Insert or replace the entry for ``entry.key``."""

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[Entry]:
        """Return the buffered entry (possibly a tombstone) or None."""

    @abc.abstractmethod
    def scan(self, start: Optional[bytes] = None, end: Optional[bytes] = None) -> Iterator[Entry]:
        """Yield buffered entries with ``start <= key <= end`` in key order."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of distinct keys buffered."""

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate heap footprint of the buffered entries."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop all entries (after a flush has persisted them)."""

    def is_empty(self) -> bool:
        return len(self) == 0

    def sorted_entries(self) -> "list[Entry]":
        """All entries in key order; the flush path consumes this."""
        return list(self.scan())
