"""A probabilistic skiplist, the classic LSM write buffer.

This is a from-scratch implementation of Pugh's skiplist with geometric tower
heights (p = 1/4, as in LevelDB). It is deterministic given its seed so tests
and experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.common.entry import Entry
from repro.memtable.base import Memtable

_MAX_HEIGHT = 16
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "entry", "next")

    def __init__(self, key: Optional[bytes], entry: Optional[Entry], height: int) -> None:
        self.key = key
        self.entry = entry
        self.next: List[Optional["_Node"]] = [None] * height


class SkipList:
    """Sorted map from key bytes to :class:`Entry` with O(log n) operations."""

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, entry: Entry) -> Optional[Entry]:
        """Insert/replace; returns the displaced entry for the key, if any."""
        update: List[_Node] = [self._head] * _MAX_HEIGHT
        node = self._head
        for level in range(self._height - 1, -1, -1):
            while node.next[level] is not None and node.next[level].key < entry.key:
                node = node.next[level]
            update[level] = node

        candidate = node.next[0]
        if candidate is not None and candidate.key == entry.key:
            displaced = candidate.entry
            candidate.entry = entry
            return displaced

        height = self._random_height()
        if height > self._height:
            self._height = height
        new_node = _Node(entry.key, entry, height)
        for level in range(height):
            new_node.next[level] = update[level].next[level]
            update[level].next[level] = new_node
        self._count += 1
        return None

    def find(self, key: bytes) -> Optional[Entry]:
        """Exact-match lookup."""
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.entry
        return None

    def iter_from(self, start: Optional[bytes] = None) -> Iterator[Entry]:
        """Yield entries with key >= start (or all entries) in key order."""
        node = self._head.next[0] if start is None else self._find_greater_or_equal(start)
        while node is not None:
            assert node.entry is not None
            yield node.entry
            node = node.next[0]

    # -- internals -----------------------------------------------------------

    def _find_greater_or_equal(self, key: bytes) -> Optional[_Node]:
        node = self._head
        for level in range(self._height - 1, -1, -1):
            while node.next[level] is not None and node.next[level].key < key:
                node = node.next[level]
        return node.next[0]

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height


class SkipListMemtable(Memtable):
    """The standard buffer: a skiplist keyed by user key."""

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._list = SkipList(seed=seed)
        self._size_bytes = 0

    def put(self, entry: Entry) -> None:
        displaced = self._list.insert(entry)
        self._size_bytes += entry.approximate_size
        if displaced is not None:
            self._size_bytes -= displaced.approximate_size

    def get(self, key: bytes) -> Optional[Entry]:
        return self._list.find(key)

    def scan(self, start: Optional[bytes] = None, end: Optional[bytes] = None) -> Iterator[Entry]:
        for entry in self._list.iter_from(start):
            if end is not None and entry.key > end:
                return
            yield entry

    def __len__(self) -> int:
        return len(self._list)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def clear(self) -> None:
        self._list = SkipList()
        self._size_bytes = 0
