"""Merge operators: RocksDB-style read-modify-write without the read.

A merge writes an *operand* instead of a full value; the engine folds
operands over the key's older versions lazily — at read time, when a newer
operand lands on a memtable-resident base, and during compaction. The fold
is defined by a :class:`MergeOperator`:

* ``apply(base, operand)`` is the **full merge** step: combine one operand
  with the current value (``None`` when the key is absent, deleted, or
  expired) into a new full value.
* ``combine(older, newer)`` is the **partial merge**: collapse two operands
  into one equivalent operand. It must be *associative* so that folding a
  chain serially, in parallel subcompaction ranges, or incrementally in the
  memtable all produce bit-identical results — the property the hypothesis
  suite checks.

A key's merge history must use a single operator; mixing operators raises
:class:`~repro.errors.MergeError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.encoding import decode_varint, encode_varint
from repro.errors import MergeError


class MergeOperator:
    """Interface for user-defined merge operators.

    Subclasses set :attr:`name` (the identifier stored inside every operand
    entry) and implement :meth:`apply`; :meth:`combine` has a correct but
    slow default that keeps operands concatenated until a base is known.
    """

    #: Stable identifier written into each operand entry on disk.
    name: str = ""

    def apply(self, base: Optional[bytes], operand: bytes) -> bytes:
        """Fold one operand over the current value (None = key absent)."""
        raise NotImplementedError

    def combine(self, older: bytes, newer: bytes) -> bytes:
        """Collapse two adjacent operands into one equivalent operand.

        Must be associative. Override when a cheap closed form exists
        (counters add, sets union); the default packs both operands into a
        length-prefixed list so no information is lost.
        """
        return _pack_operands(_unpack_operands(older) + _unpack_operands(newer))

    def fold(self, base: Optional[bytes], operands: Iterable[bytes]) -> bytes:
        """Apply operands oldest-to-newest over ``base`` via :meth:`apply`."""
        result = base
        for operand in operands:
            for part in _unpack_operands_maybe(operand):
                result = self.apply(result, part)
        if result is None:
            raise MergeError(f"operator {self.name!r} folded no operands")
        return result


_PACK_MAGIC = b"\x00ops"


def _pack_operands(parts: List[bytes]) -> bytes:
    out = bytearray(_PACK_MAGIC)
    for part in parts:
        out.extend(encode_varint(len(part)))
        out.extend(part)
    return bytes(out)


def _unpack_operands(blob: bytes) -> List[bytes]:
    if not blob.startswith(_PACK_MAGIC):
        return [blob]
    parts: List[bytes] = []
    pos = len(_PACK_MAGIC)
    while pos < len(blob):
        length, pos = decode_varint(blob, pos)
        parts.append(blob[pos : pos + length])
        pos += length
    return parts


def _unpack_operands_maybe(operand: bytes) -> List[bytes]:
    # Operands produced by the default combine() are packed lists; apply()
    # only ever sees the original user-supplied operands.
    return _unpack_operands(operand) if operand.startswith(_PACK_MAGIC) else [operand]


class Counter(MergeOperator):
    """A signed 64-bit-style counter: operands and values are ASCII ints."""

    name = "counter"

    def apply(self, base: Optional[bytes], operand: bytes) -> bytes:
        current = int(base) if base else 0
        return b"%d" % (current + int(operand))

    def combine(self, older: bytes, newer: bytes) -> bytes:
        return b"%d" % (int(older) + int(newer))


class AppendSet(MergeOperator):
    """A sorted set of byte strings; each operand adds comma-separated members.

    The stored value is the sorted, comma-joined member list, so folds are
    order-insensitive and ``combine`` (set union of the operands) is
    associative by construction. Members must not contain commas.
    """

    name = "append_set"

    @staticmethod
    def _members(blob: Optional[bytes]) -> "set[bytes]":
        if not blob:
            return set()
        return {part for part in blob.split(b",") if part}

    def apply(self, base: Optional[bytes], operand: bytes) -> bytes:
        return b",".join(sorted(self._members(base) | self._members(operand)))

    def combine(self, older: bytes, newer: bytes) -> bytes:
        return b",".join(sorted(self._members(older) | self._members(newer)))


#: Operators every tree knows without registration.
BUILTIN_OPERATORS = (Counter(), AppendSet())


class MergeOperatorRegistry:
    """Name → operator lookup owned by one tree (builtins pre-registered)."""

    def __init__(self, extra: Optional[Iterable[MergeOperator]] = None) -> None:
        self._operators: Dict[str, MergeOperator] = {
            op.name: op for op in BUILTIN_OPERATORS
        }
        for op in extra or ():
            self.register(op)

    def register(self, operator: MergeOperator) -> None:
        if not operator.name:
            raise MergeError("merge operator needs a non-empty name")
        self._operators[operator.name] = operator

    def get(self, name: str) -> MergeOperator:
        try:
            return self._operators[name]
        except KeyError:
            raise MergeError(f"no merge operator registered as {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._operators
