"""Optimistic transactions with snapshot-isolation reads.

A :class:`Transaction` buffers its writes in a :class:`~repro.txn.WriteBatch`
and pins its reads to a snapshot taken at begin. Every key the transaction
reads *or writes* is fingerprinted with the newest raw sequence number the
snapshot observed (0 when the key has never existed); at commit the store
re-checks each fingerprint against current state under the tree mutex and
applies the batch atomically through the group-commit path only if nothing
moved — otherwise it raises :class:`~repro.errors.ConflictError` and applies
nothing. First-committer-wins optimistic concurrency control: no locks are
held between begin and commit.

Handles differ only in where the snapshot reads come from:

* ``LSMTree`` / ``DBService`` / ``ShardedStore`` transactions read through a
  pinned :meth:`snapshot` — true snapshot isolation.
* ``LSMClient`` transactions read live committed state over the wire
  (``snapshot_reads=False``): each read still records the server-reported
  seqno, so validation catches any concurrent writer, but two reads inside
  one transaction may observe different commit points.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.entry import GetResult
from repro.errors import ReproError
from repro.txn.batch import WriteBatch


class Transaction:
    """One optimistic transaction against any :class:`~repro.api.KVStore`.

    Use as a context manager: ``commit()`` explicitly, or the ``with`` block
    aborts on exit if neither commit nor abort happened. Reads see the
    transaction's own pending writes first (read-your-writes), then the
    snapshot.
    """

    def __init__(self, store, snapshot_reads: bool = True) -> None:
        self._store = store
        self._snapshot = store.snapshot() if snapshot_reads else None
        self._batch = WriteBatch()
        # key -> newest raw seqno observed at first touch (the read set).
        self._footprint: Dict[bytes, int] = {}
        self._done = False

    # -- reads ---------------------------------------------------------------

    def get(self, key: bytes) -> GetResult:
        """Snapshot read with read-your-writes over the pending batch."""
        self._check_active()
        pending = self._pending_result(key)
        if pending is not None:
            self._record(key)
            return pending
        result = self._base_get(key)
        self._footprint.setdefault(key, result.seqno)
        return result

    def _base_get(self, key: bytes) -> GetResult:
        source = self._snapshot if self._snapshot is not None else self._store
        return source.get(key)

    def _pending_result(self, key: bytes) -> Optional[GetResult]:
        """Resolve ``key`` from the pending batch alone, if it decides it."""
        value: Optional[bytes] = None
        decided = False
        for kind, op_key, op_value, meta in self._batch:
            if op_key != key:
                continue
            if kind in ("put", "put_ttl"):
                value, decided = op_value, True
            elif kind == "delete":
                value, decided = None, True
            elif kind == "merge":
                base = value
                if not decided:
                    base_result = self._base_get(key)
                    base = base_result.value if base_result.found else None
                    self._footprint.setdefault(key, base_result.seqno)
                operator = self._merge_operator(str(meta))
                value, decided = operator.apply(base, op_value), True
        if not decided:
            return None
        return GetResult(value=value, found=value is not None)

    def _merge_operator(self, name: str):
        resolver = getattr(self._store, "merge_operator", None)
        if resolver is not None:
            return resolver(name)
        from repro.txn.merge import MergeOperatorRegistry

        return MergeOperatorRegistry().get(name)

    # -- writes --------------------------------------------------------------

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> None:
        self._check_active()
        self._record(key)
        self._batch.put(key, value, ttl=ttl)

    def delete(self, key: bytes) -> None:
        self._check_active()
        self._record(key)
        self._batch.delete(key)

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> None:
        self._check_active()
        self._record(key)
        self._batch.merge(key, operand, operator=operator)

    def _record(self, key: bytes) -> None:
        """Fingerprint a written key so write-write races fail validation."""
        if key not in self._footprint:
            self._footprint[key] = self._base_get(key).seqno

    # -- lifecycle -----------------------------------------------------------

    @property
    def footprint(self) -> Dict[bytes, int]:
        """The validated read/write set: key → snapshot-observed seqno."""
        return dict(self._footprint)

    def commit(self) -> int:
        """Validate the footprint and apply the batch atomically.

        Returns the number of records applied (0 for a read-only
        transaction). Raises :class:`~repro.errors.ConflictError` when any
        footprint key changed since the snapshot; nothing is applied then
        and the transaction is finished either way.
        """
        self._check_active()
        try:
            if not self._batch:
                count = 0
                if self._footprint:
                    # Read-only transactions still validate: a clean commit
                    # certifies the reads were of one consistent point.
                    count = self._store.commit_transaction(
                        self._footprint, []
                    )
                return count
            return self._store.commit_transaction(
                self._footprint, list(self._batch)
            )
        finally:
            self._finish()

    def abort(self) -> None:
        """Drop the pending batch and release the snapshot."""
        if not self._done:
            self._finish()

    def _finish(self) -> None:
        self._done = True
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot = None

    def _check_active(self) -> None:
        if self._done:
            raise ReproError("operation on a finished Transaction")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.abort()
