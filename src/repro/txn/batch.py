"""WriteBatch: an ordered group of writes applied atomically.

The batch is the unit every handle's ``write()`` accepts and the payload an
optimistic :class:`~repro.txn.Transaction` commits. Ops are stored in
insertion order as ``(kind, key, value, meta)`` tuples — the same shape
:meth:`repro.core.lsm_tree.LSMTree.write_batch` consumes — where ``meta``
carries the operator name for merges and the relative TTL (seconds of
simulated time) for ``put_ttl``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

WriteBatchOp = Tuple[str, bytes, Optional[bytes], Optional[object]]


class WriteBatch:
    """An ordered, atomic group of put/delete/merge/put-with-TTL writes."""

    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops: List[WriteBatchOp] = []

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> "WriteBatch":
        if ttl is None:
            self._ops.append(("put", key, value, None))
        else:
            self._ops.append(("put_ttl", key, value, float(ttl)))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self._ops.append(("delete", key, None, None))
        return self

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> "WriteBatch":
        self._ops.append(("merge", key, operand, operator))
        return self

    def clear(self) -> None:
        self._ops.clear()

    @property
    def ops(self) -> List[WriteBatchOp]:
        """The batch contents in insertion order (do not mutate)."""
        return self._ops

    def keys(self) -> "set[bytes]":
        return {op[1] for op in self._ops}

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __iter__(self) -> Iterator[WriteBatchOp]:
        return iter(self._ops)
