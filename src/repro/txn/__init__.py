"""repro.txn — optimistic transactions, merge operators, and TTL.

Three workload enablers layered on machinery the engine already had:

* **Transactions** (:class:`Transaction`, :class:`WriteBatch`): snapshot
  reads via pinned versions, a seqno-fingerprint read set validated under
  the tree mutex at commit, atomic apply through the group-commit WAL frame.
* **Merge operators** (:class:`MergeOperator`, built-in :class:`Counter` and
  :class:`AppendSet`): typed operand entries folded lazily at read time and
  during compaction.
* **TTL**: ``put(key, value, ttl=...)`` stamps an absolute expiry deadline
  on the simulated clock; expired keys read as deleted and are reclaimed by
  the compaction filter hook.

This module stays import-light (no engine imports) so the core can import
operator machinery without cycles.
"""

from repro.errors import ConflictError, MergeError
from repro.txn.batch import WriteBatch
from repro.txn.merge import (
    BUILTIN_OPERATORS,
    AppendSet,
    Counter,
    MergeOperator,
    MergeOperatorRegistry,
)
from repro.txn.transaction import Transaction

__all__ = [
    "Transaction",
    "WriteBatch",
    "MergeOperator",
    "MergeOperatorRegistry",
    "Counter",
    "AppendSet",
    "BUILTIN_OPERATORS",
    "ConflictError",
    "MergeError",
]
