"""Experiment harness shared by benchmarks/ and examples/."""

from repro.bench.harness import RunMetrics, preload_tree, run_operations
from repro.bench.report import format_table, print_table

__all__ = ["RunMetrics", "run_operations", "preload_tree", "format_table", "print_table"]
