"""Drives operation streams against trees and measures what the paper reports.

Every experiment in benchmarks/ has the same skeleton: build a tree from an
LSMConfig, preload it, run an operation stream, and report I/O-per-operation
metrics from device/cache/filter counters. This module owns that skeleton.

It is also runnable — ``python -m repro.bench.harness --profile`` drives a
mixed workload under :mod:`cProfile` and prints the top cumulative hot spots,
the quick check that a CPU-path change actually moved the profile::

    PYTHONPATH=src python -m repro.bench.harness --profile --ops 20000
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.common.encoding import encode_uint_key
from repro.core.lsm_tree import LSMTree
from repro.workloads.spec import Operation, _value_for


@dataclass
class RunMetrics:
    """Aggregate metrics for one measured phase."""

    operations: int = 0
    gets: int = 0
    puts: int = 0
    scans: int = 0
    deletes: int = 0
    found: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    simulated_time: float = 0.0
    filter_probes: int = 0
    filter_negatives: int = 0
    false_positives: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    scan_entries: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def reads_per_get(self) -> float:
        return self.blocks_read / self.gets if self.gets else 0.0

    @property
    def ios_per_op(self) -> float:
        total = self.blocks_read + self.blocks_written
        return total / self.operations if self.operations else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def observed_fpr(self) -> float:
        """FP / (FP + TN): probes on runs that did not hold the key."""
        absent_probes = self.false_positives + self.filter_negatives
        return self.false_positives / absent_probes if absent_probes > 0 else 0.0


def preload_tree(tree: LSMTree, keyspace: int, value_size: int = 64, seed: int = 7) -> None:
    """Insert every key once in a shuffled deterministic order, then flush."""
    import random

    order = list(range(keyspace))
    random.Random(seed).shuffle(order)
    for key in order:
        tree.put(encode_uint_key(key), _value_for(key, 0, value_size))
    tree.flush()


def run_operations(
    tree: LSMTree,
    operations: Iterable[Operation],
    max_scan_entries: Optional[int] = None,
    registry=None,
) -> RunMetrics:
    """Execute an operation stream, measuring only this phase's deltas.

    Args:
        registry: when given (a :class:`repro.observe.MetricsRegistry`), an
            observer is attached to the tree for the duration of the run, so
            the phase reports latency *distributions* (percentiles land in
            ``metrics.extras["latency"]``), not just per-op means. Any
            previously attached observer is restored afterwards.
    """
    metrics = RunMetrics()
    observer = previous_observer = None
    if registry is not None:
        from repro.observe import EngineObserver

        observer = EngineObserver(registry)
        previous_observer = tree.observer
        tree.observer = observer
    device_before = tree.device.stats.snapshot()
    cache_before = tree.cache.stats.snapshot()
    probe_before_probes = tree.stats.probe.filter_probes
    probe_before_negatives = tree.stats.probe.filter_negatives
    probe_before_fp = tree.stats.probe.false_positives

    try:
        _drive_operations(tree, operations, metrics, max_scan_entries)
    finally:
        if registry is not None:
            metrics.extras["latency"] = {
                "get_wall": observer.get_wall.percentiles(),
                "get_sim": observer.get_sim.percentiles(),
                "put_wall": observer.put_wall.percentiles(),
                "scan_wall": observer.scan_wall.percentiles(),
            }
            tree.observer = previous_observer

    device_delta = tree.device.stats.delta(device_before)
    cache_delta = tree.cache.stats.delta(cache_before)
    metrics.blocks_read = device_delta.blocks_read
    metrics.blocks_written = device_delta.blocks_written
    metrics.simulated_time = device_delta.simulated_time
    metrics.cache_hits = cache_delta.hits
    metrics.cache_misses = cache_delta.misses
    metrics.filter_probes = tree.stats.probe.filter_probes - probe_before_probes
    metrics.filter_negatives = tree.stats.probe.filter_negatives - probe_before_negatives
    metrics.false_positives = tree.stats.probe.false_positives - probe_before_fp
    return metrics


def _drive_operations(
    tree: LSMTree,
    operations: Iterable[Operation],
    metrics: RunMetrics,
    max_scan_entries: Optional[int],
) -> None:
    for op in operations:
        metrics.operations += 1
        if op.kind == "put":
            tree.put(op.key, op.value)
            metrics.puts += 1
        elif op.kind == "get":
            result = tree.get(op.key)
            metrics.gets += 1
            if result.found:
                metrics.found += 1
        elif op.kind == "scan":
            metrics.scans += 1
            count = 0
            for _ in tree.scan(op.key, op.end_key):
                count += 1
                if max_scan_entries is not None and count >= max_scan_entries:
                    break
            metrics.scan_entries += count
        elif op.kind == "delete":
            tree.delete(op.key)
            metrics.deletes += 1
        else:
            raise ValueError(f"unknown operation kind {op.kind!r}")


# -- profiling ----------------------------------------------------------------


def run_profiled(fn: Callable[[], object], top: int = 20, sort: str = "cumulative"):
    """Run ``fn`` under :mod:`cProfile`; print the ``top`` hot spots.

    Returns ``(result, stats)`` — whatever ``fn`` returned plus the
    :class:`pstats.Stats` for callers that want to dig further. Used by the
    ``--profile`` flags on this module's CLI and ``python -m repro demo``.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    print(f"\n-- cProfile: top {top} by {sort} time " + "-" * 30)
    stats.print_stats(top)
    return result, stats


def _profile_workload(args) -> RunMetrics:
    """The CLI's measured phase: preload then drive a mixed read-heavy stream."""
    from repro.core.config import LSMConfig
    from repro.workloads.spec import OperationMix, uniform_spec

    tree = LSMTree(
        LSMConfig(
            buffer_bytes=8 << 10,
            block_size=512,
            size_ratio=4,
            layout="leveling",
            bits_per_key=10.0,
            cache_bytes=64 << 10,
            compression=args.compression,
            compressed_cache_bytes=args.compressed_cache_bytes,
            seed=1,
        )
    )
    preload_tree(tree, args.keys, value_size=64)
    spec = uniform_spec(
        args.keys,
        OperationMix(put=0.25, get=0.60, scan=0.15),
        value_size=64,
        seed=2,
        scan_length=32,
    )
    return run_operations(tree, spec.operations(args.ops))


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="bench harness CLI: drive a mixed workload, optionally profiled"
    )
    parser.add_argument("--ops", type=int, default=10_000, help="operations to drive")
    parser.add_argument("--keys", type=int, default=4_000, help="keyspace size")
    parser.add_argument("--compression", default="none",
                        help="block codec for the tree (none/zlib/rle)")
    parser.add_argument("--compressed-cache-bytes", type=int, default=0,
                        help="compressed cache tier capacity (0 disables)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the hot spots")
    parser.add_argument("--top", type=int, default=20,
                        help="profile rows to print (with --profile)")
    args = parser.parse_args(argv)

    if args.profile:
        metrics, _ = run_profiled(lambda: _profile_workload(args), top=args.top)
    else:
        metrics = _profile_workload(args)
    print(
        f"{metrics.operations} ops: {metrics.gets} gets "
        f"({metrics.reads_per_get:.3f} blocks/get), {metrics.scans} scans, "
        f"{metrics.puts} puts; cache hit rate {metrics.cache_hit_rate:.3f}"
    )
    return 0


# -- concurrent driving (the service layer's workloads) ------------------------


@dataclass
class ConcurrentRunMetrics:
    """What a multi-threaded phase against a :class:`DBService` reports."""

    operations: int = 0
    puts: int = 0
    gets: int = 0
    found: int = 0
    wall_seconds: float = 0.0
    max_flush_backlog: int = 0  # peak sealed-memtables + level-1 runs observed
    errors: List[str] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.wall_seconds if self.wall_seconds else 0.0


def run_concurrent_workload(
    service,
    n_writers: int,
    ops_per_writer: int,
    n_readers: int = 0,
    ops_per_reader: int = 0,
    keyspace: int = 10_000,
    value_size: int = 40,
    seed: int = 7,
    sample_interval_s: float = 0.001,
    registry=None,
    sampling: float = 0.0,
) -> ConcurrentRunMetrics:
    """Drive N writer and M reader threads through a DBService.

    Writers put deterministic (thread-disjoint) keys; readers issue point
    lookups over the same keyspace. While client threads run, the driver
    samples the tree's flush backlog so stall behavior is observable (the
    quantity backpressure is supposed to bound). Exceptions raised inside
    client threads are captured into ``errors`` rather than lost.

    Args:
        registry: when given, ``service.attach_observability(registry,
            sampling)`` is called before the workload starts, so the run
            reports client-observed latency percentiles, queue-depth
            gauges, and stall histograms — not just means.
        sampling: read-path trace sampling fraction passed through.
    """
    if registry is not None and hasattr(service, "attach_observability"):
        service.attach_observability(registry, sampling=sampling)
    metrics = ConcurrentRunMetrics()
    lock = threading.Lock()
    start_barrier = threading.Barrier(n_writers + n_readers + 1)

    def writer(tid: int) -> None:
        local_puts = 0
        try:
            start_barrier.wait()
            for i in range(ops_per_writer):
                key = (tid * ops_per_writer + i * 7919) % keyspace
                service.put(encode_uint_key(key), _value_for(key, seed, value_size))
                local_puts += 1
        except Exception as exc:  # noqa: BLE001 - surfaced via metrics.errors
            with lock:
                metrics.errors.append(f"writer {tid}: {exc!r}")
        finally:
            with lock:
                metrics.puts += local_puts
                metrics.operations += local_puts

    def reader(tid: int) -> None:
        local_gets = 0
        local_found = 0
        try:
            start_barrier.wait()
            for i in range(ops_per_reader):
                key = (tid * 104729 + i * 613) % keyspace
                if service.get(encode_uint_key(key)).found:
                    local_found += 1
                local_gets += 1
        except Exception as exc:  # noqa: BLE001
            with lock:
                metrics.errors.append(f"reader {tid}: {exc!r}")
        finally:
            with lock:
                metrics.gets += local_gets
                metrics.found += local_found
                metrics.operations += local_gets

    threads = [
        threading.Thread(target=writer, args=(tid,), name=f"bench-writer-{tid}")
        for tid in range(n_writers)
    ] + [
        threading.Thread(target=reader, args=(tid,), name=f"bench-reader-{tid}")
        for tid in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    began = time.monotonic()
    tree = getattr(service, "tree", service)
    while any(thread.is_alive() for thread in threads):
        metrics.max_flush_backlog = max(metrics.max_flush_backlog, tree.flush_backlog())
        time.sleep(sample_interval_s)
    for thread in threads:
        thread.join()
    metrics.max_flush_backlog = max(metrics.max_flush_backlog, tree.flush_backlog())
    metrics.wall_seconds = time.monotonic() - began
    return metrics


# -- networked driving (the server layer's workloads) --------------------------


def run_server_workload(
    service,
    tenants,
    server_config=None,
    registry=None,
):
    """Front ``service`` with an :class:`~repro.server.LSMServer` and drive it.

    The networked sibling of :func:`run_concurrent_workload`: spins up the
    framed-protocol server on an ephemeral port, runs the multi-tenant
    closed-loop load generator over real TCP connections, shuts the server
    down, and returns ``(results, stats_snapshot)`` — per-tenant
    :class:`~repro.server.TenantRunResult` plus the server's final stats
    frame (admission counters included). Client-observed latency lands in
    ``registry`` (a fresh one by default) under ``client_op_wall_seconds``.
    """
    from repro.observe import MetricsRegistry
    from repro.server import LSMServer, run_load

    if registry is None:
        registry = MetricsRegistry()
    server = LSMServer(service, server_config)
    server.start()
    try:
        host, port = server.address
        results = run_load(host, port, tenants, registry=registry)
        snapshot = server.stats_snapshot()
    finally:
        server.shutdown()
    return results, snapshot


if __name__ == "__main__":
    raise SystemExit(main())
