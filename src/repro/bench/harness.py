"""Drives operation streams against trees and measures what the paper reports.

Every experiment in benchmarks/ has the same skeleton: build a tree from an
LSMConfig, preload it, run an operation stream, and report I/O-per-operation
metrics from device/cache/filter counters. This module owns that skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.common.encoding import encode_uint_key
from repro.core.lsm_tree import LSMTree
from repro.workloads.spec import Operation, _value_for


@dataclass
class RunMetrics:
    """Aggregate metrics for one measured phase."""

    operations: int = 0
    gets: int = 0
    puts: int = 0
    scans: int = 0
    deletes: int = 0
    found: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    simulated_time: float = 0.0
    filter_probes: int = 0
    filter_negatives: int = 0
    false_positives: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    scan_entries: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def reads_per_get(self) -> float:
        return self.blocks_read / self.gets if self.gets else 0.0

    @property
    def ios_per_op(self) -> float:
        total = self.blocks_read + self.blocks_written
        return total / self.operations if self.operations else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def observed_fpr(self) -> float:
        """FP / (FP + TN): probes on runs that did not hold the key."""
        absent_probes = self.false_positives + self.filter_negatives
        return self.false_positives / absent_probes if absent_probes > 0 else 0.0


def preload_tree(tree: LSMTree, keyspace: int, value_size: int = 64, seed: int = 7) -> None:
    """Insert every key once in a shuffled deterministic order, then flush."""
    import random

    order = list(range(keyspace))
    random.Random(seed).shuffle(order)
    for key in order:
        tree.put(encode_uint_key(key), _value_for(key, 0, value_size))
    tree.flush()


def run_operations(
    tree: LSMTree,
    operations: Iterable[Operation],
    max_scan_entries: Optional[int] = None,
) -> RunMetrics:
    """Execute an operation stream, measuring only this phase's deltas."""
    metrics = RunMetrics()
    device_before = tree.device.stats.snapshot()
    cache_before = tree.cache.stats.snapshot()
    probe_before_probes = tree.stats.probe.filter_probes
    probe_before_negatives = tree.stats.probe.filter_negatives
    probe_before_fp = tree.stats.probe.false_positives

    for op in operations:
        metrics.operations += 1
        if op.kind == "put":
            tree.put(op.key, op.value)
            metrics.puts += 1
        elif op.kind == "get":
            result = tree.get(op.key)
            metrics.gets += 1
            if result.found:
                metrics.found += 1
        elif op.kind == "scan":
            metrics.scans += 1
            count = 0
            for _ in tree.scan(op.key, op.end_key):
                count += 1
                if max_scan_entries is not None and count >= max_scan_entries:
                    break
            metrics.scan_entries += count
        elif op.kind == "delete":
            tree.delete(op.key)
            metrics.deletes += 1
        else:
            raise ValueError(f"unknown operation kind {op.kind!r}")

    device_delta = tree.device.stats.delta(device_before)
    cache_delta = tree.cache.stats.delta(cache_before)
    metrics.blocks_read = device_delta.blocks_read
    metrics.blocks_written = device_delta.blocks_written
    metrics.simulated_time = device_delta.simulated_time
    metrics.cache_hits = cache_delta.hits
    metrics.cache_misses = cache_delta.misses
    metrics.filter_probes = tree.stats.probe.filter_probes - probe_before_probes
    metrics.filter_negatives = tree.stats.probe.filter_negatives - probe_before_negatives
    metrics.false_positives = tree.stats.probe.false_positives - probe_before_fp
    return metrics
