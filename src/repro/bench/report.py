"""Plain-text tables for experiment output (the rows EXPERIMENTS.md records)."""

from __future__ import annotations

from typing import List, Sequence


def _render(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print a titled table (benchmarks call this so output lands in logs)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
