"""Exception hierarchy for the repro LSM engine.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class. Sub-hierarchies separate configuration mistakes
(caller bugs) from runtime storage conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value or an inconsistent combination of knobs."""


class StorageError(ReproError):
    """Base class for storage-substrate failures."""


class BlockNotFoundError(StorageError):
    """A block read referenced a (file, block) pair that was never written."""

    def __init__(self, file_id: int, block_no: int) -> None:
        super().__init__(f"block {block_no} of file {file_id} does not exist")
        self.file_id = file_id
        self.block_no = block_no


class FileNotFoundStorageError(StorageError):
    """A file-level operation referenced an unknown or deleted file id."""

    def __init__(self, file_id: int) -> None:
        super().__init__(f"file {file_id} does not exist")
        self.file_id = file_id


class ImmutableWriteError(StorageError):
    """An attempt to rewrite a block of a sealed (immutable) file."""


class CorruptionError(StorageError):
    """A block failed its checksum or structural validation."""

    def __init__(self, detail: str) -> None:
        super().__init__(f"corruption detected: {detail}")


class TransientIOError(StorageError):
    """A read failed for a reason a retry may fix (injected by repro.faults).

    The hardened read path (:class:`repro.faults.ReadGuard`) retries these
    with capped exponential backoff before letting them propagate.
    """

    def __init__(self, file_id: int, block_no: int) -> None:
        super().__init__(f"transient I/O error reading block {block_no} of file {file_id}")
        self.file_id = file_id
        self.block_no = block_no


class QuarantinedFileError(CorruptionError):
    """A read touched a file already quarantined for persistent corruption."""

    def __init__(self, file_id: int) -> None:
        super().__init__(f"file {file_id} is quarantined")
        self.file_id = file_id


class SimulatedCrashError(ReproError):
    """The fault injector killed the engine at a named crash point.

    Carries the crash-point name; the crash harness catches this, abandons
    the engine object, and reopens from the device via manifest + WAL replay.
    Never raised unless a :class:`repro.faults.FaultyBlockDevice` is armed.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class ConnectionLostError(ReproError):
    """The network peer died mid-conversation (reset, half-close, or a frame
    cut short by the disconnect).

    Raised by :class:`repro.server.client.LSMClient` whenever the transport
    fails under a request — whatever the raw symptom (``ConnectionResetError``,
    ``BrokenPipeError``, a clean EOF inside a frame, a socket timeout, or a
    short-read decode error), the client surfaces this one typed error so
    retry loops have a single thing to catch. When the loss struck *after*
    the request was sent, the operation may or may not have been applied;
    idempotency tokens (see :class:`repro.server.dedup.DedupTable`) make the
    retry safe.
    """


class DeadlineExceededError(ReproError):
    """A client operation ran out of its per-request deadline budget.

    The retrying client raises this instead of sleeping past the deadline;
    for a mutating request the outcome is *unknown* (the final attempt may
    have been applied server-side after its reply was lost).
    """


class FilterError(ReproError):
    """Base class for filter construction/probe errors."""


class FilterFullError(FilterError):
    """A bounded-capacity filter (e.g. cuckoo) could not admit another key."""


class IndexError_(ReproError):
    """Base class for index construction errors (named to avoid builtins clash)."""


class CompactionError(ReproError):
    """A compaction plan was invalid or could not be executed."""


class TuningError(ReproError):
    """A tuning/optimization routine received an infeasible problem."""


class ClosedError(ReproError):
    """An operation was attempted on a closed LSM tree."""


class SnapshotError(ReproError):
    """A scan referenced a snapshot that has been released."""


class ConflictError(ReproError):
    """An optimistic transaction failed validation at commit.

    A key in the transaction's read/write footprint changed (new version,
    delete, or merge operand) between the snapshot it read under and the
    commit attempt. The transaction was not applied; retry against fresh
    state.
    """


class MergeError(ReproError):
    """A merge operand could not be applied.

    Raised when an operand references an unregistered operator, or when two
    operands for the same key name different operators (a key's merge
    history must use one operator)."""
