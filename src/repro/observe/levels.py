"""RocksDB-style per-level statistics, derived live from a tree.

``level_stats(tree)`` joins two sources: the tree's current *shape*
(runs/files/bytes/capacity per level, always available) and the attached
:class:`~repro.observe.engine.EngineObserver`'s per-level I/O accounting
(reads, filter FPR, cache hit rate, compaction bytes — zeros when no
observer is attached). The result renders as the classic ``compaction
stats`` dump and exports as labeled gauges.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.report import format_table
from repro.observe.metrics import MetricsRegistry

#: Column order of the rendered table (and the per-level dict keys).
LEVEL_COLUMNS = [
    "level", "runs", "files", "bytes", "capacity", "entries",
    "gets_probed", "gets_served", "filter_fpr", "cache_hit_rate",
    "block_accesses", "bytes_written", "bytes_compacted_in",
]


def level_stats(tree) -> List[dict]:
    """One dict per storage level, combining shape and I/O accounting."""
    observer = getattr(tree, "observer", None)
    rows: List[dict] = []
    known_levels = set()
    for summary in tree.level_summary():
        level_no = summary["level"]
        known_levels.add(level_no)
        row = {
            "level": level_no,
            "runs": summary["runs"],
            "files": summary["files"],
            "bytes": summary["bytes"],
            "capacity": summary["capacity"],
            "entries": summary["entries"],
            "gets_probed": 0,
            "gets_served": 0,
            "filter_fpr": 0.0,
            "cache_hit_rate": 0.0,
            "block_accesses": 0,
            "bytes_written": 0,
            "bytes_compacted_in": 0,
        }
        if observer is not None and level_no in observer.levels:
            io = observer.levels[level_no]
            row.update(
                gets_probed=io.gets_probed,
                gets_served=io.gets_served,
                filter_fpr=io.filter_fpr,
                cache_hit_rate=io.cache_hit_rate,
                block_accesses=io.block_accesses,
                bytes_written=io.bytes_written,
                bytes_compacted_in=io.bytes_compacted_in,
            )
        rows.append(row)
    if observer is not None:
        # Levels that held data earlier but are empty now still have history.
        for level_no in sorted(observer.levels):
            if level_no in known_levels:
                continue
            io = observer.levels[level_no]
            rows.append(
                {
                    "level": level_no,
                    "runs": 0,
                    "files": 0,
                    "bytes": 0,
                    "capacity": tree.config.level_capacity(level_no),
                    "entries": 0,
                    "gets_probed": io.gets_probed,
                    "gets_served": io.gets_served,
                    "filter_fpr": io.filter_fpr,
                    "cache_hit_rate": io.cache_hit_rate,
                    "block_accesses": io.block_accesses,
                    "bytes_written": io.bytes_written,
                    "bytes_compacted_in": io.bytes_compacted_in,
                }
            )
        rows.sort(key=lambda row: row["level"])
    return rows


def format_level_table(tree) -> str:
    """The per-level stats table as aligned ASCII (RocksDB's dump shape)."""
    rows = level_stats(tree)
    return format_table(
        LEVEL_COLUMNS,
        [[row[column] for column in LEVEL_COLUMNS] for row in rows],
    )


def _export_level_gauges_once(tree, registry: MetricsRegistry) -> None:
    for row in level_stats(tree):
        labels = {"level": str(row["level"])}
        for column in LEVEL_COLUMNS:
            if column == "level":
                continue
            registry.gauge(
                f"level_{column}", f"per-level {column}", labels=labels
            ).set(float(row[column]))


def export_level_gauges(
    tree, registry: Optional[MetricsRegistry] = None, live: bool = True
) -> MetricsRegistry:
    """Publish the per-level table into ``registry`` as labeled gauges.

    Each column becomes ``level_<column>{level="N"}``; calling again
    refreshes the same series. Uses the tree observer's registry when none
    is given (and a fresh one when the tree is unobserved).

    With ``live=True`` (the default) a refresh hook is also registered on the
    registry, so every later ``snapshot()``/export re-derives the gauges from
    the tree's *current* shape — an idle process no longer reports the level
    sizes frozen at the last explicit export. Re-attaching for the same tree
    replaces the previous hook.
    """
    if registry is None:
        observer = getattr(tree, "observer", None)
        registry = observer.registry if observer is not None else MetricsRegistry()
    _export_level_gauges_once(tree, registry)
    if live:
        registry.add_refresh_hook(
            lambda: _export_level_gauges_once(tree, registry),
            key=("level_gauges", id(tree)),
        )
    return registry
