"""Exporters: Prometheus text exposition, JSON snapshots, human dumps.

Three renderings of one :class:`~repro.observe.metrics.MetricsRegistry`:

* :func:`to_prometheus` — the text exposition format scrapers ingest
  (counters/gauges as single samples, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``);
* :func:`to_json` — a machine-readable snapshot (dashboards, CI artifacts);
* :func:`render_dump` — the human table reusing ``bench/report``.

``parse_prometheus`` is the inverse of :func:`to_prometheus` for the
round-trip tests (and for anyone diffing two scrapes without a server).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.report import format_table
from repro.observe.metrics import Histogram, MetricsRegistry


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _metric_name(registry: MetricsRegistry, metric) -> str:
    prefix = f"{registry.namespace}_" if registry.namespace else ""
    return prefix + metric.name


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry.refresh()  # pushed gauges re-derive before the scrape reads them
    lines: List[str] = []
    seen_headers = set()

    def header(full_name: str, help: str, kind: str) -> None:
        if full_name in seen_headers:
            return
        seen_headers.add(full_name)
        if help:
            lines.append(f"# HELP {full_name} {_escape(help)}")
        lines.append(f"# TYPE {full_name} {kind}")

    for counter in registry.counters():
        full = _metric_name(registry, counter)
        header(full, counter.help, "counter")
        lines.append(f"{full}{_render_labels(counter.labels)} {_format_value(counter.value)}")
    for gauge in registry.gauges():
        full = _metric_name(registry, gauge)
        header(full, gauge.help, "gauge")
        lines.append(f"{full}{_render_labels(gauge.labels)} {_format_value(gauge.value)}")
    for histogram in registry.histograms():
        full = _metric_name(registry, histogram)
        header(full, histogram.help, "histogram")
        cumulative = 0
        for upper_bound, count in histogram.buckets():
            cumulative += count
            le = ("le", _format_value(upper_bound))
            lines.append(
                f"{full}_bucket{_render_labels(histogram.labels, le)} {cumulative}"
            )
        lines.append(
            f"{full}_bucket{_render_labels(histogram.labels, ('le', '+Inf'))} "
            f"{histogram.count}"
        )
        lines.append(
            f"{full}_sum{_render_labels(histogram.labels)} {_format_value(histogram.total)}"
        )
        lines.append(f"{full}_count{_render_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{series-with-labels: value}`` (round-trips)."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        samples[series] = value
    return samples


def to_json(
    registry: MetricsRegistry,
    tree=None,
    recorder=None,
    indent: Optional[int] = 2,
) -> str:
    """A JSON snapshot: the registry, plus optional engine/trace sections.

    Args:
        tree: when given, adds ``engine`` (``LSMTree.metrics_snapshot()``)
            and ``levels`` (the per-level table) sections.
        recorder: when given, adds the retained trace spans.
    """
    from repro.observe.levels import level_stats

    payload = {"metrics": registry.snapshot()}
    if tree is not None:
        payload["engine"] = tree.metrics_snapshot()
        payload["levels"] = level_stats(tree)
    if recorder is not None:
        payload["traces"] = recorder.snapshot()
    return json.dumps(payload, indent=indent, sort_keys=True)


def latency_rows(
    histograms: Sequence[Histogram],
) -> List[List[object]]:
    """Table rows (name, count, mean, p50, p90, p99, p99.9, max) per histogram."""
    rows: List[List[object]] = []
    for histogram in histograms:
        pct = histogram.percentiles()
        label = histogram.name
        if histogram.labels:
            rendered = ",".join(f"{k}={v}" for k, v in sorted(histogram.labels.items()))
            label = f"{label}{{{rendered}}}"
        rows.append(
            [
                label,
                histogram.count,
                histogram.mean,
                pct["p50"],
                pct["p90"],
                pct["p99"],
                pct["p99_9"],
                histogram.max if histogram.count else 0.0,
            ]
        )
    return rows


def render_dump(registry: MetricsRegistry, tree=None) -> str:
    """The human-readable dump: latency table, counters, per-level table."""
    from repro.observe.levels import format_level_table

    registry.refresh()
    sections: List[str] = []
    histograms = registry.histograms()
    if histograms:
        sections.append("== latency distributions ==")
        sections.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "p99.9", "max"],
                latency_rows(histograms),
            )
        )
    counters = registry.counters()
    if counters:
        sections.append("\n== counters ==")
        sections.append(
            format_table(
                ["counter", "value"],
                [[c.name, c.value] for c in counters],
            )
        )
    gauges = registry.gauges()
    if gauges:
        sections.append("\n== gauges ==")
        rows = []
        for gauge in gauges:
            label = gauge.name
            if gauge.labels:
                rendered = ",".join(f"{k}={v}" for k, v in sorted(gauge.labels.items()))
                label = f"{label}{{{rendered}}}"
            rows.append([label, gauge.value])
        sections.append(format_table(["gauge", "value"], rows))
    if tree is not None:
        sections.append("\n== per-level stats ==")
        sections.append(format_level_table(tree))
    return "\n".join(sections)
