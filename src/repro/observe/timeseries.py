"""Time-series layer: fixed-capacity ring-buffer series scraped on an interval.

The :class:`TimeSeriesSampler` turns the point-in-time observability surfaces
(a :class:`~repro.observe.metrics.MetricsRegistry`, an engine's
``metrics_snapshot()``) into *history*: each :meth:`~TimeSeriesSampler.scrape`
appends one ``(t, value)`` point per series into a bounded :class:`RingSeries`,
so dashboards (``python -m repro stats --live``), the ``stats_history`` server
frame, and ROADMAP item 2's tuning daemon can all read rates and trends
instead of raw monotone totals.

Series come in two kinds. ``cumulative`` series (registry counters, histogram
``_count``/``_sum``, engine op totals) are stored raw and differentiated on
read — :meth:`RingSeries.deltas` / :meth:`RingSeries.rates`. ``level`` series
(gauges, derived ratios like cache hit ratio or stall fraction) are
point-in-time values read back as-is.

The scrape clock is injectable: pass the engine's simulated clock for
deterministic tests, or leave the wall default and call :meth:`start` for a
background thread that scrapes on a fixed wall interval.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple


class RingSeries:
    """One named series: a bounded ring of ``(timestamp, value)`` points.

    Args:
        name: the series key (registry series name, or a derived metric).
        capacity: points retained; appending past it evicts the oldest.
        kind: ``"cumulative"`` for monotone totals (rates derived on read)
            or ``"level"`` for point-in-time values.
    """

    __slots__ = ("name", "capacity", "kind", "_points")

    def __init__(self, name: str, capacity: int = 240, kind: str = "level") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if kind not in ("cumulative", "level"):
            raise ValueError("kind must be 'cumulative' or 'level'")
        self.name = name
        self.capacity = capacity
        self.kind = kind
        self._points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self._points.append((float(t), float(value)))

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> List[Tuple[float, float]]:
        """All retained ``(t, v)`` points, oldest first."""
        return list(self._points)

    def timestamps(self) -> List[float]:
        return [t for t, _ in self._points]

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def deltas(self) -> List[Tuple[float, float]]:
        """Successive differences: ``(t_i, v_i - v_{i-1})`` — length n-1."""
        pts = self.points()
        return [(t1, v1 - v0) for (_, v0), (t1, v1) in zip(pts, pts[1:])]

    def rates(self) -> List[Tuple[float, float]]:
        """Per-second rates ``(t_i, dv/dt)``; zero-dt intervals are skipped."""
        pts = self.points()
        out: List[Tuple[float, float]] = []
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            dt = t1 - t0
            if dt > 0.0:
                out.append((t1, (v1 - v0) / dt))
        return out

    def last_rate(self) -> Optional[float]:
        rates = self.rates()
        return rates[-1][1] if rates else None

    def merge(self, other: "RingSeries") -> "RingSeries":
        """A new series holding both point sets, time-ordered, same bound.

        Points are sorted by ``(t, v)`` so the merge is deterministic and
        commutative; appending the sorted union through the ring keeps the
        *newest* points when the union exceeds capacity.
        """
        merged = RingSeries(self.name, capacity=self.capacity, kind=self.kind)
        for t, v in sorted(self.points() + other.points()):
            merged.append(t, v)
        return merged

    def as_dict(self, last_n: Optional[int] = None) -> dict:
        pts = self.points()
        if last_n is not None:
            pts = pts[-last_n:] if last_n > 0 else []
        return {
            "name": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "t": [t for t, _ in pts],
            "v": [v for _, v in pts],
        }


class TimeSeriesSampler:
    """Scrapes a registry (and pluggable sources) into :class:`RingSeries`.

    Every :meth:`scrape` reads, under one timestamp:

    * registry **counters** → cumulative series (per labeled series key);
    * registry **gauges** → level series (function-backed gauges and refresh
      hooks run at scrape time, so an idle process reports truthful values);
    * registry **histograms** → ``<key>_count`` / ``<key>_sum`` cumulative
      series (rate of ``_sum``/rate of ``_count`` = rolling mean latency);
    * every **source** callable registered via :meth:`add_source` — a plain
      ``fn() -> {name: value}`` (see :class:`EngineSource` for the engine's
      derived per-level/cache/stall view).

    Args:
        registry: the registry to scrape (optional — sources alone work).
        capacity: ring capacity for every series created by this sampler.
        clock: timestamp source (wall by default; inject simulated time).
    """

    def __init__(self, registry=None, capacity: int = 240,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.registry = registry
        self.capacity = capacity
        self.clock = clock
        self._series: Dict[str, RingSeries] = {}
        self._sources: List[Tuple[Callable[[], Dict[str, float]], bool]] = []
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.samples = 0

    # -- configuration ---------------------------------------------------------

    def add_source(self, fn: Callable[[], Dict[str, float]],
                   cumulative: bool = False) -> None:
        """Register ``fn() -> {series_name: value}`` scraped on every sample.

        ``cumulative=True`` marks every series the source emits as a monotone
        total (rates derived on read); the default treats them as level
        values. A source that raises is skipped for that scrape.
        """
        self._sources.append((fn, cumulative))

    # -- sampling --------------------------------------------------------------

    def _record(self, name: str, t: float, value, cumulative: bool) -> None:
        try:
            value = float(value)
        except (TypeError, ValueError):
            return
        if value != value:  # skip NaN (dead function gauges)
            return
        series = self._series.get(name)
        if series is None:
            series = RingSeries(
                name, capacity=self.capacity,
                kind="cumulative" if cumulative else "level",
            )
            self._series[name] = series
        series.append(t, value)

    def scrape(self) -> Dict[str, float]:
        """Take one sample of everything; returns the flat values recorded."""
        t = self.clock()
        flat: Dict[str, Tuple[float, bool]] = {}
        registry = self.registry
        if registry is not None:
            snap = registry.snapshot()  # runs refresh hooks + function gauges
            for key, value in snap.get("counters", {}).items():
                flat[key] = (value, True)
            for key, value in snap.get("gauges", {}).items():
                flat[key] = (value, False)
            for key, hist in snap.get("histograms", {}).items():
                flat[f"{key}_count"] = (hist.get("count", 0), True)
                flat[f"{key}_sum"] = (hist.get("sum", 0.0), True)
        for fn, cumulative in self._sources:
            try:
                emitted = fn()
            except Exception:
                continue
            for key, value in (emitted or {}).items():
                flat[key] = (value, cumulative)
        with self._lock:
            for name, (value, cumulative) in flat.items():
                self._record(name, t, value, cumulative)
            self.samples += 1
        return {name: value for name, (value, _) in flat.items()}

    # -- background scraping ---------------------------------------------------

    def start(self, interval_s: float) -> None:
        """Scrape every ``interval_s`` seconds on a daemon thread."""
        if interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.scrape()
                except Exception:
                    continue  # a scrape must never kill the sampler

        self._thread = threading.Thread(target=loop, name="timeseries-sampler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    # -- reading ---------------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> Optional[RingSeries]:
        with self._lock:
            return self._series.get(name)

    def last(self, name: str) -> Optional[float]:
        series = self.series(name)
        point = series.last() if series is not None else None
        return point[1] if point is not None else None

    def rate(self, name: str) -> Optional[float]:
        """Latest per-second rate of a cumulative series (None if <2 points)."""
        series = self.series(name)
        return series.last_rate() if series is not None else None

    def as_dict(self, last_n: Optional[int] = None) -> dict:
        """The full history, JSON-able (the ``stats_history`` frame payload)."""
        with self._lock:
            series = {name: rs.as_dict(last_n=last_n)
                      for name, rs in sorted(self._series.items())}
        return {
            "samples": self.samples,
            "capacity": self.capacity,
            "series": series,
        }


class EngineSource:
    """A sampler source deriving the engine's headline ratios per interval.

    Wraps anything with ``metrics_snapshot()`` (an ``LSMTree``, a
    ``DBService``) and, when an :class:`~repro.observe.engine.EngineObserver`
    is attached, its per-level I/O accounting. Each call emits:

    * cumulative totals: ``engine_gets`` / ``engine_puts`` / ``engine_deletes``
      / ``engine_cache_lookups`` / ``engine_stall_wall_seconds`` /
      ``level<N>_gets_probed`` / ``level<N>_filter_probes``;
    * interval-derived level values (computed against the previous call):
      ``cache_hit_ratio``, ``stall_fraction``, ``read_fraction`` (the
      read/write mix), ``level<N>_fpr``, ``level<N>_probes_per_s``;
    * shape gauges: ``engine_levels`` / ``engine_runs`` /
      ``engine_memtable_entries``.

    Register with ``sampler.add_source(EngineSource(service))`` — the emitted
    dict mixes kinds, so cumulative names are declared via
    :attr:`CUMULATIVE_PREFIXES` and the source registers itself as level data;
    the cumulative members are *also* re-emitted by a companion source. To
    keep wiring one-line, use :func:`attach_engine_source`.
    """

    CUMULATIVE_PREFIXES = ("engine_gets", "engine_puts", "engine_deletes",
                           "engine_cache_lookups", "engine_stall_wall_seconds")

    def __init__(self, target, clock: Callable[[], float] = time.monotonic) -> None:
        self._target = target
        self._clock = clock
        self._prev: Dict[str, float] = {}
        self._prev_t: Optional[float] = None

    @staticmethod
    def _tree_of(target):
        return getattr(target, "tree", target)

    def __call__(self) -> Dict[str, float]:
        target = self._target
        snap = target.metrics_snapshot()
        t = self._clock()
        out: Dict[str, float] = {}

        gets = float(snap.get("gets", 0))
        puts = float(snap.get("puts", 0))
        deletes = float(snap.get("deletes", 0))
        hits = float(snap.get("cache_hits", 0))
        lookups = float(snap.get("cache_lookups", 0))
        stall_wall = float(snap.get("stall_time_wall", 0.0))

        prev, prev_t = self._prev, self._prev_t

        def delta(name: str, value: float) -> float:
            return value - prev.get(name, 0.0)

        d_reads = delta("gets", gets)
        d_writes = delta("puts", puts) + delta("deletes", deletes)
        d_hits = delta("cache_hits", hits)
        d_lookups = delta("cache_lookups", lookups)
        d_stall = delta("stall_wall", stall_wall)
        dt = (t - prev_t) if prev_t is not None else 0.0

        out["cache_hit_ratio"] = (d_hits / d_lookups) if d_lookups > 0 else (
            hits / lookups if lookups > 0 else 0.0)
        out["stall_fraction"] = min(1.0, d_stall / dt) if dt > 0 else 0.0
        d_ops = d_reads + d_writes
        out["read_fraction"] = (d_reads / d_ops) if d_ops > 0 else 0.0

        out["engine_gets"] = gets
        out["engine_puts"] = puts
        out["engine_deletes"] = deletes
        out["engine_cache_lookups"] = lookups
        out["engine_stall_wall_seconds"] = stall_wall
        out["engine_levels"] = float(snap.get("levels", 0))
        out["engine_runs"] = float(snap.get("runs", 0))
        out["engine_memtable_entries"] = float(snap.get("memtable_entries", 0))

        observer = getattr(self._tree_of(target), "observer", None)
        if observer is not None:
            for level_no in sorted(observer.levels):
                io = observer.levels[level_no]
                probed = float(io.gets_probed)
                fps = float(io.false_positives)
                negs = float(io.filter_negatives)
                d_probed = delta(f"l{level_no}_probed", probed)
                d_fps = delta(f"l{level_no}_fps", fps)
                d_absent = d_fps + delta(f"l{level_no}_negs", negs)
                absent_total = fps + negs
                out[f"level{level_no}_fpr"] = (
                    d_fps / d_absent if d_absent > 0
                    else (fps / absent_total if absent_total > 0 else 0.0))
                out[f"level{level_no}_probes_per_s"] = (
                    d_probed / dt if dt > 0 else 0.0)
                out[f"level{level_no}_gets_probed"] = probed
                out[f"level{level_no}_filter_probes"] = float(io.filter_probes)
                prev[f"l{level_no}_probed"] = probed
                prev[f"l{level_no}_fps"] = fps
                prev[f"l{level_no}_negs"] = negs

        prev.update(gets=gets, puts=puts, deletes=deletes,
                    cache_hits=hits, cache_lookups=lookups,
                    stall_wall=stall_wall)
        self._prev_t = t
        return out


def attach_engine_source(sampler: TimeSeriesSampler, target) -> EngineSource:
    """Wire an :class:`EngineSource` for ``target`` into ``sampler``.

    The derived ratios/gauges register as level series; the monotone
    ``engine_*`` totals and per-level probe counters register as cumulative
    so :meth:`RingSeries.rates` works on them.
    """
    source = EngineSource(target, clock=sampler.clock)

    cumulative_exact = set(EngineSource.CUMULATIVE_PREFIXES)

    def level_part() -> Dict[str, float]:
        emitted = source()
        return {k: v for k, v in emitted.items()
                if k not in cumulative_exact and not k.endswith(("_gets_probed", "_filter_probes"))}

    def cumulative_part() -> Dict[str, float]:
        # Reuses the totals cached by the level part's call in the same
        # scrape (sources run in registration order) — no second snapshot.
        prev = source._prev
        out = {
            "engine_gets": prev.get("gets", 0.0),
            "engine_puts": prev.get("puts", 0.0),
            "engine_deletes": prev.get("deletes", 0.0),
            "engine_cache_lookups": prev.get("cache_lookups", 0.0),
            "engine_stall_wall_seconds": prev.get("stall_wall", 0.0),
        }
        for key, value in prev.items():
            if key.startswith("l") and key.endswith("_probed"):
                level_no = key[1:-len("_probed")]
                out[f"level{level_no}_gets_probed"] = value
        return out

    sampler.add_source(level_part, cumulative=False)
    sampler.add_source(cumulative_part, cumulative=True)
    return source
