"""repro.observe — metrics, tracing, per-level stats, and exporters.

The observability layer every perf claim in this repo reports through:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  log-bucketed :class:`Histogram` (p50/p90/p99/p99.9, mergeable across
  shards, bounded memory);
* :class:`TraceRecorder` + :class:`Span` — sampled read-path tracing with a
  ring buffer, near-free when sampling is off;
* :func:`level_stats` / :func:`format_level_table` — the RocksDB-style
  per-level stats table;
* :func:`to_prometheus` / :func:`to_json` / :func:`render_dump` — the
  export surfaces (``python -m repro stats --format ...``).

Attach to an engine with :func:`observe_tree` (or
``DBService.attach_observability`` for the concurrent service layer).
"""

from repro.observe.engine import EngineObserver, LevelIOStats, observe_tree
from repro.observe.export import (
    latency_rows,
    parse_prometheus,
    render_dump,
    to_json,
    to_prometheus,
)
from repro.observe.levels import (
    LEVEL_COLUMNS,
    export_level_gauges,
    format_level_table,
    level_stats,
)
from repro.observe.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.observe.tracing import Span, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "DEFAULT_QUANTILES",
    "EngineObserver",
    "LevelIOStats",
    "observe_tree",
    "Span",
    "TraceRecorder",
    "level_stats",
    "format_level_table",
    "export_level_gauges",
    "LEVEL_COLUMNS",
    "to_prometheus",
    "parse_prometheus",
    "to_json",
    "render_dump",
    "latency_rows",
]
