"""repro.observe — metrics, tracing, per-level stats, and exporters.

The observability layer every perf claim in this repo reports through:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  log-bucketed :class:`Histogram` (p50/p90/p99/p99.9, mergeable across
  shards, bounded memory);
* :class:`TraceRecorder` + :class:`Span` + :class:`TraceContext` — sampled
  request tracing with a ring buffer, near-free when sampling is off, joined
  across processes via the wire-propagated context; :class:`SlowOpLog` for
  the always-on slow-request breakdowns;
* :class:`EventJournal` — the bounded, thread-safe journal of typed engine
  events (flush/compaction/stall/quarantine/throttle) with JSONL export;
* :class:`TimeSeriesSampler` + :class:`RingSeries` — fixed-interval scrapes
  of any registry into bounded history with delta/rate derivation (the
  ``stats_history`` frame and ``python -m repro stats --live``);
* :func:`level_stats` / :func:`format_level_table` — the RocksDB-style
  per-level stats table;
* :func:`to_prometheus` / :func:`to_json` / :func:`render_dump` — the
  export surfaces (``python -m repro stats --format ...``).

Attach to an engine with :func:`observe_tree` (or
``DBService.attach_observability`` for the concurrent service layer).
"""

from repro.observe.engine import EngineObserver, LevelIOStats, observe_tree
from repro.observe.journal import EVENT_KINDS, EventJournal, JournalEvent
from repro.observe.export import (
    latency_rows,
    parse_prometheus,
    render_dump,
    to_json,
    to_prometheus,
)
from repro.observe.levels import (
    LEVEL_COLUMNS,
    export_level_gauges,
    format_level_table,
    level_stats,
)
from repro.observe.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.observe.timeseries import (
    EngineSource,
    RingSeries,
    TimeSeriesSampler,
    attach_engine_source,
)
from repro.observe.tracing import (
    SlowOpLog,
    Span,
    TraceContext,
    TraceRecorder,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "DEFAULT_QUANTILES",
    "EngineObserver",
    "LevelIOStats",
    "observe_tree",
    "Span",
    "TraceRecorder",
    "TraceContext",
    "SlowOpLog",
    "new_trace_id",
    "new_span_id",
    "EventJournal",
    "JournalEvent",
    "EVENT_KINDS",
    "RingSeries",
    "TimeSeriesSampler",
    "EngineSource",
    "attach_engine_source",
    "level_stats",
    "format_level_table",
    "export_level_gauges",
    "LEVEL_COLUMNS",
    "to_prometheus",
    "parse_prometheus",
    "to_json",
    "render_dump",
    "latency_rows",
]
