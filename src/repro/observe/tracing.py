"""Request tracing: spans with exact stage partitions, joined across processes.

A :class:`Span` records how one operation's time divides across named stages
(wire decode, admission wait, memtable probe, per-level storage probes, reply
encode, ...) plus structured events. The :class:`TraceRecorder` keeps the most
recent spans in a bounded ring buffer and owns the sampling decision, so the
instrumented hot path costs a single attribute check and one comparison when
sampling is off — no span is ever allocated for an unsampled operation.

Cross-process propagation works through :class:`TraceContext` — an immutable
(trace_id, span_id, sampled) triple. The outermost span (the client call, or
the server request when the client did not trace) makes the sampling decision
exactly once; everything downstream *inherits* it, either explicitly
(``recorder.start(name, parent=ctx)``) or through the recorder's thread-local
active context (``recorder.activate(ctx)`` around the engine call, then
``recorder.maybe_start(name)`` at each instrumented site). That is what makes
a multi-stage request either fully traced or not traced at all, never
half-traced, and what lets a client span, the server span it spawned, and the
engine spans below them share one ``trace_id`` with resolvable parent links.

The :class:`SlowOpLog` is the always-on sibling: the server measures its stage
breakdown cheaply for every request and records the full breakdown here for
any request over a threshold, regardless of the sampling decision.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (urandom, collision-safe across processes)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit hex span id (unique within a trace)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """The wire-propagated triple: which trace, which parent, and whether to record.

    ``sampled=False`` contexts still propagate — they carry the outermost
    span's *negative* decision downstream so no inner site re-rolls the dice.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}


class Span:
    """One traced operation: named stages, events, attributes, and identity.

    ``total`` is defined as the sum of the recorded stage durations; when
    :meth:`finish` observes wall time beyond the explicit stages it appends
    a final ``"other"`` stage for the remainder, so the stage breakdown
    always partitions the span's total exactly.
    """

    __slots__ = ("name", "started_at", "stages", "events", "attrs", "total", "_wall0",
                 "trace_id", "span_id", "parent_id")

    def __init__(self, name: str, clock: float, trace_id: str = "",
                 span_id: str = "", parent_id: str = "") -> None:
        self.name = name
        self.started_at = clock
        self._wall0 = clock
        self.stages: List[Tuple[str, float]] = []
        self.events: List[Dict[str, object]] = []
        self.attrs: Dict[str, object] = {}
        self.total = 0.0
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id  # "" marks a root span

    def context(self) -> TraceContext:
        """The context a child (possibly in another process) should inherit."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id, sampled=True)

    def add_stage(self, name: str, duration: float) -> None:
        """Record one stage's duration (seconds)."""
        self.stages.append((name, duration))

    def event(self, kind: str, **fields) -> None:
        """Record a structured event (e.g. one storage level's probe)."""
        record: Dict[str, object] = {"kind": kind}
        record.update(fields)
        self.events.append(record)

    def finish(self, clock: float, **attrs) -> None:
        """Close the span: absorb unattributed time, fix ``total``, tag attrs."""
        self.attrs.update(attrs)
        elapsed = clock - self._wall0
        explicit = sum(duration for _, duration in self.stages)
        if elapsed > explicit:
            self.stages.append(("other", elapsed - explicit))
        # Definitionally: total is the stage sum, so the breakdown always
        # adds up to exactly what the span reports.
        self.total = sum(duration for _, duration in self.stages)

    def stage_dict(self) -> Dict[str, float]:
        """Stage durations keyed by name (repeated names accumulate)."""
        out: Dict[str, float] = {}
        for name, duration in self.stages:
            out[name] = out.get(name, 0.0) + duration
        return out

    def as_dict(self) -> dict:
        """A JSON-able rendering (the trace schema the docs describe)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "total": self.total,
            "stages": [[name, duration] for name, duration in self.stages],
            "events": list(self.events),
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"Span({self.name!r}, total={self.total:.6f}, stages={len(self.stages)})"


class TraceRecorder:
    """A bounded ring buffer of sampled spans plus the per-request decision.

    Args:
        capacity: how many finished spans to retain (oldest evicted first).
        sampling: fraction of operations to trace in [0, 1]. 0 disables
            tracing entirely — :meth:`should_sample` returns False before
            any allocation happens; 1 traces everything.
        seed: seeds the sampling RNG so traced runs are reproducible.
            (Span/trace *ids* come from urandom, never from this seed, so two
            seeded recorders on either end of a socket cannot collide.)
    """

    def __init__(self, capacity: int = 256, sampling: float = 0.0, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 <= sampling <= 1.0:
            raise ValueError("sampling must be within [0, 1]")
        self.capacity = capacity
        self.sampling = sampling
        self._rng = random.Random(seed)
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.sampled = 0  # spans recorded since construction
        self.dropped = 0  # spans evicted by the ring bound
        self.clock = time.perf_counter

    # -- the hot-path contract ------------------------------------------------

    def should_sample(self) -> bool:
        """The root sampling decision; made once at the outermost span only."""
        sampling = self.sampling
        if sampling <= 0.0:
            return False
        if sampling >= 1.0:
            return True
        return self._rng.random() < sampling

    def start(self, name: str, parent: Optional[TraceContext] = None) -> Span:
        """Allocate a span; callers must have consulted :meth:`should_sample`
        (or be inheriting a sampled :class:`TraceContext` via ``parent``)."""
        if parent is not None:
            return Span(name, self.clock(), trace_id=parent.trace_id,
                        parent_id=parent.span_id)
        return Span(name, self.clock())

    def maybe_start(self, name: str) -> Optional[Span]:
        """Start a span honouring the active context, or make the root decision.

        Inside an activated context this *inherits* the outer decision (span
        when sampled, ``None`` when not — no dice re-rolled). With no active
        context this site *is* the outermost span and decides for the whole
        request.
        """
        ctx = self.active()
        if ctx is not None:
            if not ctx.sampled:
                return None
            return self.start(name, parent=ctx)
        if not self.should_sample():
            return None
        return self.start(name)

    def finish(self, span: Span, **attrs) -> None:
        """Close ``span`` and append it to the ring buffer (thread-safe)."""
        span.finish(self.clock(), **attrs)
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)
            self.sampled += 1

    # -- thread-local context propagation --------------------------------------

    def activate(self, ctx: Optional[TraceContext]) -> Optional[TraceContext]:
        """Install ``ctx`` as this thread's active context; returns the previous
        one, which the caller must hand back to :meth:`deactivate`."""
        previous = getattr(self._local, "ctx", None)
        self._local.ctx = ctx
        return previous

    def deactivate(self, previous: Optional[TraceContext] = None) -> None:
        """Restore the previously active context (``None`` clears it)."""
        self._local.ctx = previous

    def active(self) -> Optional[TraceContext]:
        """This thread's active context, or None outside any request scope."""
        return getattr(self._local, "ctx", None)

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, n: Optional[int] = None) -> List[Span]:
        """The most recent ``n`` spans (all retained spans when None), oldest first."""
        with self._lock:
            items = list(self._spans)
        if n is not None:
            items = items[-n:] if n > 0 else []
        return items

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def snapshot(self) -> dict:
        """JSON-able: sampling settings plus every retained span."""
        with self._lock:
            spans = [span.as_dict() for span in self._spans]
        return {
            "sampling": self.sampling,
            "capacity": self.capacity,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "spans": spans,
        }


class SlowOpLog:
    """Bounded log of requests whose total exceeded a threshold.

    Unlike the sampled :class:`TraceRecorder`, this catches *every* slow
    request: the server measures its stage breakdown cheaply for all requests
    and only pays the record cost here when ``total_s >= threshold_s``. Each
    record carries the full stage dict and, when the request happened to be
    sampled, the ``trace_id`` that joins it to the span tree.
    """

    def __init__(self, threshold_s: float = 0.25, capacity: int = 128,
                 clock=time.time) -> None:
        if threshold_s < 0.0:
            raise ValueError("threshold_s must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.threshold_s = threshold_s
        self.capacity = capacity
        self.clock = clock
        self._records: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.observed = 0  # requests offered
        self.recorded = 0  # requests over threshold

    def observe(self, op: str, total_s: float,
                stages: Optional[Mapping[str, float]] = None, **attrs) -> bool:
        """Offer one finished request; record it iff it was slow. Returns
        whether it was recorded."""
        self.observed += 1
        if total_s < self.threshold_s:
            return False
        record = {
            "ts": self.clock(),
            "op": op,
            "total_s": total_s,
            "stages": dict(stages or {}),
        }
        record.update(attrs)
        with self._lock:
            self._records.append(record)
            self.recorded += 1
        return True

    def __len__(self) -> int:
        return len(self._records)

    def records(self, n: Optional[int] = None) -> List[dict]:
        """The most recent ``n`` slow records (all when None), oldest first."""
        with self._lock:
            items = list(self._records)
        if n is not None:
            items = items[-n:] if n > 0 else []
        return items

    def snapshot(self) -> dict:
        return {
            "threshold_s": self.threshold_s,
            "capacity": self.capacity,
            "observed": self.observed,
            "recorded": self.recorded,
            "records": self.records(),
        }
