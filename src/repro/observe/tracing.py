"""Read-path tracing: per-operation spans with a sampled ring buffer.

A :class:`Span` records how one operation's time divides across the read
path's stages (memtable probe, per-level storage probes, value-log fetch)
plus structured events (one per storage level touched, carrying filter /
fence / cache / block counters). The :class:`TraceRecorder` keeps the most
recent spans in a bounded ring buffer and owns the sampling decision, so the
instrumented hot path costs a single attribute check and one comparison when
sampling is off — no span is ever allocated for an unsampled operation.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class Span:
    """One traced operation: named stages, events, and attributes.

    ``total`` is defined as the sum of the recorded stage durations; when
    :meth:`finish` observes wall time beyond the explicit stages it appends
    a final ``"other"`` stage for the remainder, so the stage breakdown
    always partitions the span's total exactly.
    """

    __slots__ = ("name", "started_at", "stages", "events", "attrs", "total", "_wall0")

    def __init__(self, name: str, clock: float) -> None:
        self.name = name
        self.started_at = clock
        self._wall0 = clock
        self.stages: List[Tuple[str, float]] = []
        self.events: List[Dict[str, object]] = []
        self.attrs: Dict[str, object] = {}
        self.total = 0.0

    def add_stage(self, name: str, duration: float) -> None:
        """Record one stage's duration (seconds)."""
        self.stages.append((name, duration))

    def event(self, kind: str, **fields) -> None:
        """Record a structured event (e.g. one storage level's probe)."""
        record: Dict[str, object] = {"kind": kind}
        record.update(fields)
        self.events.append(record)

    def finish(self, clock: float, **attrs) -> None:
        """Close the span: absorb unattributed time, fix ``total``, tag attrs."""
        self.attrs.update(attrs)
        elapsed = clock - self._wall0
        explicit = sum(duration for _, duration in self.stages)
        if elapsed > explicit:
            self.stages.append(("other", elapsed - explicit))
        # Definitionally: total is the stage sum, so the breakdown always
        # adds up to exactly what the span reports.
        self.total = sum(duration for _, duration in self.stages)

    def stage_dict(self) -> Dict[str, float]:
        """Stage durations keyed by name (repeated names accumulate)."""
        out: Dict[str, float] = {}
        for name, duration in self.stages:
            out[name] = out.get(name, 0.0) + duration
        return out

    def as_dict(self) -> dict:
        """A JSON-able rendering (the trace schema the docs describe)."""
        return {
            "name": self.name,
            "total": self.total,
            "stages": [[name, duration] for name, duration in self.stages],
            "events": list(self.events),
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"Span({self.name!r}, total={self.total:.6f}, stages={len(self.stages)})"


class TraceRecorder:
    """A bounded ring buffer of sampled spans.

    Args:
        capacity: how many finished spans to retain (oldest evicted first).
        sampling: fraction of operations to trace in [0, 1]. 0 disables
            tracing entirely — :meth:`should_sample` returns False before
            any allocation happens; 1 traces everything.
        seed: seeds the sampling RNG so traced runs are reproducible.
    """

    def __init__(self, capacity: int = 256, sampling: float = 0.0, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 <= sampling <= 1.0:
            raise ValueError("sampling must be within [0, 1]")
        self.capacity = capacity
        self.sampling = sampling
        self._rng = random.Random(seed)
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.sampled = 0  # spans recorded since construction
        self.dropped = 0  # spans evicted by the ring bound
        self.clock = time.perf_counter

    # -- the hot-path contract ------------------------------------------------

    def should_sample(self) -> bool:
        """The per-operation sampling decision; the only cost when off."""
        sampling = self.sampling
        if sampling <= 0.0:
            return False
        if sampling >= 1.0:
            return True
        return self._rng.random() < sampling

    def start(self, name: str) -> Span:
        """Allocate a span; callers must have consulted :meth:`should_sample`."""
        return Span(name, self.clock())

    def finish(self, span: Span, **attrs) -> None:
        """Close ``span`` and append it to the ring buffer."""
        span.finish(self.clock(), **attrs)
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self.sampled += 1

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, n: Optional[int] = None) -> List[Span]:
        """The most recent ``n`` spans (all retained spans when None), oldest first."""
        items = list(self._spans)
        if n is not None:
            items = items[-n:] if n > 0 else []
        return items

    def clear(self) -> None:
        self._spans.clear()

    def snapshot(self) -> dict:
        """JSON-able: sampling settings plus every retained span."""
        return {
            "sampling": self.sampling,
            "capacity": self.capacity,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "spans": [span.as_dict() for span in self._spans],
        }
