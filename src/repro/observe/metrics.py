"""Metric primitives: counters, gauges, and log-bucketed histograms.

The registry is the one place every instrumented component reports into, so
a snapshot of it is a complete picture of the engine at a point in time.
Design constraints (all load-bearing for the rest of ``repro.observe``):

* **Bounded memory.** A histogram's buckets grow geometrically, so covering
  twelve decades of latency costs a few hundred integers, not one slot per
  distinct value.
* **Mergeable.** Two histograms with the same ``growth``/``min_value`` bucket
  identically, so a cross-shard merge is exact bucket-wise addition — the
  property :class:`~repro.sharding.ShardedStore` relies on for its merged
  registry.
* **Thread-safe.** Client threads and background maintenance workers record
  concurrently; every mutation takes the metric's lock (uncontended in the
  single-threaded engine).
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: The quantiles every latency report prints, in order.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.50, 0.90, 0.99, 0.999)


def _label_key(labels: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone counter (Prometheus ``counter`` semantics)."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Counter") -> None:
        with self._lock:
            self._value += other.value


class Gauge:
    """A point-in-time value; optionally backed by a callback.

    A callback gauge (``set_function``) is sampled at snapshot/export time —
    the natural shape for queue depths and backlogs that already live in
    some component's state.
    """

    __slots__ = ("name", "help", "labels", "_value", "_fn", "_lock")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample ``fn`` on every read instead of storing a value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:  # a dying component must not break exports
                return float("nan")
        return self._value

    def merge(self, other: "Gauge") -> None:
        # Merging gauges sums them: queue depths and backlogs across shards
        # add; for averages, export the underlying counters instead.
        with self._lock:
            self._fn = None
            self._value = self.value + other.value


class Histogram:
    """A log-bucketed distribution with bounded memory and exact merges.

    Values are assigned to geometric buckets: bucket ``i`` covers
    ``(min_value * growth**i, min_value * growth**(i+1)]``, with one
    underflow bucket for values ``<= min_value``. A quantile estimate is the
    upper bound of the bucket holding that rank, so it is always within one
    bucket's relative error (a factor of ``growth``) above the exact sample
    quantile.

    Args:
        name: metric name (exported as ``<name>`` with ``_bucket`` series).
        help: one-line description for the Prometheus ``# HELP`` header.
        growth: per-bucket geometric growth factor (> 1). The default 1.2
            gives <= 20% relative error on every quantile.
        min_value: the underflow boundary; values at or below it land in the
            underflow bucket and are estimated as ``min_value``.
    """

    __slots__ = (
        "name", "help", "labels", "growth", "min_value",
        "_log_growth", "_buckets", "count", "total", "min", "max", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        growth: float = 1.2,
        min_value: float = 1e-9,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}  # bucket index -> count (sparse)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return -1  # underflow bucket
        # ceil(log_g(v / min)) - 1: the bucket whose upper bound first
        # reaches v. Guard against float noise putting v in the bucket above.
        idx = int(math.ceil(math.log(value / self.min_value) / self._log_growth)) - 1
        if idx >= 0 and value <= self.min_value * self.growth ** idx:
            idx -= 1
        return max(idx, -1)

    def bucket_upper_bound(self, index: int) -> float:
        """The inclusive upper edge of bucket ``index``."""
        if index < 0:
            return self.min_value
        return self.min_value * self.growth ** (index + 1)

    def record(self, value: float) -> None:
        """Add one observation (negative values clamp to the underflow)."""
        value = float(value)
        idx = self._index(value)
        with self._lock:
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Returns the upper bound of the bucket containing the sample of rank
        ``ceil(q * count)`` — an overestimate by at most a factor of
        ``growth``. Returns 0.0 on an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            seen = 0
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if seen >= rank:
                    # Never report past the true extremes.
                    return min(self.bucket_upper_bound(idx), self.max)
            return self.max  # unreachable unless counts raced; be safe

    def percentiles(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, float]:
        """``{"p50": ..., "p99": ...}`` for the requested quantiles."""
        out = {}
        for q in quantiles:
            label = ("p%g" % (q * 100)).replace(".", "_")
            out[label] = self.quantile(q)
        return out

    def buckets(self) -> List[Tuple[float, int]]:
        """Sorted ``(upper_bound, count)`` pairs for the non-empty buckets."""
        with self._lock:
            return [
                (self.bucket_upper_bound(idx), self._buckets[idx])
                for idx in sorted(self._buckets)
            ]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (must share growth/min_value)."""
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ValueError("cannot merge histograms with different bucketing")
        with other._lock:
            other_buckets = dict(other._buckets)
            other_count, other_total = other.count, other.total
            other_min, other_max = other.min, other.max
        with self._lock:
            for idx, n in other_buckets.items():
                self._buckets[idx] = self._buckets.get(idx, 0) + n
            self.count += other_count
            self.total += other_total
            self.min = min(self.min, other_min)
            self.max = max(self.max, other_max)

    def snapshot(self) -> dict:
        """A JSON-able summary (what the exporters serialize)."""
        summary = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": [[ub, n] for ub, n in self.buckets()],
        }
        summary.update(self.percentiles())
        return summary


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented code
    asks for its metric by name every time and pays one dict lookup, so no
    component needs registry-wiring ceremony. Metrics with the same name but
    different label sets are distinct series (Prometheus semantics).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: Dict[tuple, object] = {}
        self._refresh_hooks: Dict[object, Callable[[], None]] = {}
        self._lock = threading.Lock()

    # -- refresh hooks ---------------------------------------------------------

    def add_refresh_hook(self, fn: Callable[[], None], key: Optional[object] = None) -> None:
        """Register ``fn`` to run before every snapshot/export.

        Components whose gauges are *pushed* (``.set()``) rather than
        function-backed register a hook so an idle process still reports
        current values at read time. Passing the same ``key`` again replaces
        the previous hook (idempotent re-attachment).
        """
        with self._lock:
            self._refresh_hooks[key if key is not None else fn] = fn

    def refresh(self) -> None:
        """Run every refresh hook (errors swallowed: exports must not die)."""
        with self._lock:
            hooks = list(self._refresh_hooks.values())
        for fn in hooks:
            try:
                fn()
            except Exception:
                continue

    def _get_or_create(self, kind: str, key: tuple, factory):
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            metric = factory()
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        key = ("counter", name, _label_key(labels))
        return self._get_or_create(
            "counter", key, lambda: Counter(name, help, labels)
        )

    def gauge(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        key = ("gauge", name, _label_key(labels))
        return self._get_or_create("gauge", key, lambda: Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        growth: float = 1.2,
        min_value: float = 1e-9,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        return self._get_or_create(
            "histogram",
            key,
            lambda: Histogram(name, help, growth, min_value, labels),
        )

    # -- iteration / snapshot ------------------------------------------------

    def counters(self) -> List[Counter]:
        return [m for m in self._iter() if isinstance(m, Counter)]

    def gauges(self) -> List[Gauge]:
        return [m for m in self._iter() if isinstance(m, Gauge)]

    def histograms(self) -> List[Histogram]:
        return [m for m in self._iter() if isinstance(m, Histogram)]

    def _iter(self) -> Iterable:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every registered series (refreshed first)."""
        self.refresh()

        def series_key(metric) -> str:
            if not metric.labels:
                return metric.name
            rendered = ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items()))
            return f"{metric.name}{{{rendered}}}"

        return {
            "namespace": self.namespace,
            "counters": {series_key(c): c.value for c in self.counters()},
            "gauges": {series_key(g): g.value for g in self.gauges()},
            "histograms": {series_key(h): h.snapshot() for h in self.histograms()},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (cross-shard aggregation).

        Counters and gauges add; histograms merge bucket-wise. Series are
        matched by (kind, name, labels); unmatched series are copied in.
        """
        with other._lock:
            items = list(other._metrics.items())
        for key, metric in items:
            kind = key[0]
            if kind == "counter":
                self.counter(metric.name, metric.help, metric.labels).merge(metric)
            elif kind == "gauge":
                self.gauge(metric.name, metric.help, metric.labels).merge(metric)
            else:
                self.histogram(
                    metric.name, metric.help, metric.growth,
                    metric.min_value, metric.labels,
                ).merge(metric)


def merge_registries(
    registries: Sequence[MetricsRegistry], namespace: str = "repro"
) -> MetricsRegistry:
    """A fresh registry holding the sum of ``registries`` (shards in, one out)."""
    merged = MetricsRegistry(namespace=namespace)
    for registry in registries:
        merged.merge(registry)
    return merged
