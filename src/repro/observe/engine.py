"""The engine-side observer: feeds a registry from LSMTree hot paths.

One :class:`EngineObserver` instance binds one tree (or shard) to one
:class:`~repro.observe.metrics.MetricsRegistry`. The tree calls the
``record_*`` hooks from its get/put/scan/flush/compaction paths; each hook
is a couple of histogram/counter updates, and none are called at all when no
observer is attached (the hot paths check one attribute).

Latency is recorded on two clocks:

* **simulated device time** — the block device's latency model, the unit
  every experiment in ``benchmarks/`` reports; and
* **wall-clock seconds** — what a client of the concurrent service layer
  actually waits, including lock waits, group-commit linger, and stalls.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observe.journal import EventJournal
from repro.observe.metrics import MetricsRegistry

#: Wall-clock histograms: 1 microsecond floor, <=20% relative error.
WALL_MIN = 1e-6
#: Simulated-time histograms: the unit is one sequential block read.
SIM_MIN = 1e-3


class LevelIOStats:
    """Per-level read/write accounting accumulated by the observer."""

    __slots__ = (
        "gets_probed", "gets_served", "filter_probes", "filter_negatives",
        "false_positives", "block_accesses", "cache_hits", "index_probes",
        "bytes_written", "bytes_compacted_in",
    )

    def __init__(self) -> None:
        self.gets_probed = 0  # point lookups that reached this level
        self.gets_served = 0  # point lookups answered by this level
        self.filter_probes = 0
        self.filter_negatives = 0
        self.false_positives = 0
        self.block_accesses = 0  # data blocks touched (cache hits included)
        self.cache_hits = 0
        self.index_probes = 0
        self.bytes_written = 0  # flush/compaction output landing here
        self.bytes_compacted_in = 0  # bytes read out of this level by merges

    @property
    def filter_fpr(self) -> float:
        absent = self.false_positives + self.filter_negatives
        return self.false_positives / absent if absent else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.block_accesses if self.block_accesses else 0.0

    def as_dict(self) -> dict:
        return {
            "gets_probed": self.gets_probed,
            "gets_served": self.gets_served,
            "filter_probes": self.filter_probes,
            "filter_negatives": self.filter_negatives,
            "false_positives": self.false_positives,
            "filter_fpr": self.filter_fpr,
            "block_accesses": self.block_accesses,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "index_probes": self.index_probes,
            "bytes_written": self.bytes_written,
            "bytes_compacted_in": self.bytes_compacted_in,
        }


class EngineObserver:
    """Registry-backed instrumentation for one :class:`~repro.core.lsm_tree.LSMTree`.

    Args:
        registry: the registry to report into (a private one by default).
        labels: optional labels stamped on every series this observer owns
            (the sharded store labels each shard's observer).
        journal: the structured event journal maintenance events feed into
            (a private bounded one by default; share one across components
            to interleave engine, backpressure, and server events).
        journal_capacity: ring bound for the default journal.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, str]] = None,
        journal: Optional[EventJournal] = None,
        journal_capacity: int = 4096,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self.journal = journal if journal is not None else EventJournal(journal_capacity)
        reg = self.registry

        def hist(name, help, min_value):
            return reg.histogram(name, help, min_value=min_value, labels=self.labels)

        self.get_wall = hist(
            "get_latency_wall_seconds", "point-lookup wall-clock latency", WALL_MIN
        )
        self.get_sim = hist(
            "get_latency_sim", "point-lookup simulated device time", SIM_MIN
        )
        self.put_wall = hist(
            "put_latency_wall_seconds", "write wall-clock latency", WALL_MIN
        )
        self.scan_wall = hist(
            "scan_latency_wall_seconds", "full-scan wall-clock latency", WALL_MIN
        )
        self.flush_wall = hist(
            "flush_build_wall_seconds", "memtable-flush build wall time", WALL_MIN
        )
        self.compaction_wall = hist(
            "compaction_merge_wall_seconds", "compaction merge wall time", WALL_MIN
        )
        self.get_blocks = hist(
            "get_blocks_touched", "data blocks touched per point lookup", SIM_MIN
        )
        self.gets_total = reg.counter("gets_total", "point lookups", self.labels)
        self.gets_found = reg.counter(
            "gets_found_total", "point lookups that found a value", self.labels
        )
        # Fault/recovery series (repro.faults): injected-fault handling and
        # crash-recovery timing. Zero-cost until the hooks fire.
        self.recovery_wall = hist(
            "recovery_wall_seconds", "manifest + WAL-replay recovery wall time", WALL_MIN
        )
        self.fault_counters = {
            kind: reg.counter(
                f"fault_{kind}_total", help_text, self.labels
            )
            for kind, help_text in (
                ("transient", "transient read errors observed by the read guard"),
                ("corruption", "checksum corruptions detected"),
                ("retry", "read retries issued after transient errors"),
                ("degraded", "degraded reads (broken filter/index, fell back to scan)"),
            )
        }
        self.quarantine_total = reg.counter(
            "quarantine_files_total", "files quarantined as persistently corrupt", self.labels
        )
        # Parallel-execution series (repro.parallel): key-range subcompactions.
        self.parallel_compactions_total = reg.counter(
            "parallel_compactions_total",
            "compactions executed as key-range subcompactions",
            self.labels,
        )
        self.subcompactions_total = reg.counter(
            "subcompactions_total", "subcompaction worker jobs run", self.labels
        )
        self.recoveries_total = reg.counter(
            "recoveries_total", "crash recoveries completed", self.labels
        )
        self.levels: Dict[int, LevelIOStats] = {}

    # -- hooks called from the engine hot paths ------------------------------

    def record_get(self, wall_s: float, sim_time: float, found: bool, blocks: int) -> None:
        self.get_wall.record(wall_s)
        self.get_sim.record(sim_time)
        self.get_blocks.record(blocks)
        self.gets_total.inc()
        if found:
            self.gets_found.inc()

    def record_put(self, wall_s: float) -> None:
        self.put_wall.record(wall_s)

    def record_scan(self, wall_s: float) -> None:
        self.scan_wall.record(wall_s)

    def record_flush_build(self, wall_s: float) -> None:
        self.flush_wall.record(wall_s)

    def record_compaction(self, wall_s: float) -> None:
        self.compaction_wall.record(wall_s)

    def record_compaction_start(self, level: int, dest: int, bytes_in: int,
                                runs: int = 0) -> None:
        """A merge was picked and is about to execute (journal only)."""
        self.journal.emit("compaction_start", level=level, dest=dest,
                          bytes_in=bytes_in, runs=runs)

    def record_subcompaction(self, ranges: int) -> None:
        """One merge just ran as ``ranges`` parallel key-range subcompactions."""
        self.parallel_compactions_total.inc()
        self.subcompactions_total.inc(ranges)

    def level(self, level_no: int) -> LevelIOStats:
        stats = self.levels.get(level_no)
        if stats is None:
            stats = self.levels[level_no] = LevelIOStats()
        return stats

    def record_level_probe(
        self,
        level_no: int,
        probes: int,
        negatives: int,
        false_positives: int,
        block_accesses: int,
        cache_hits: int,
        index_probes: int,
        served: bool,
    ) -> None:
        """One point lookup's footprint at one level (called per level probed)."""
        stats = self.level(level_no)
        stats.gets_probed += 1
        stats.filter_probes += probes
        stats.filter_negatives += negatives
        stats.false_positives += false_positives
        stats.block_accesses += block_accesses
        stats.cache_hits += cache_hits
        stats.index_probes += index_probes
        if served:
            stats.gets_served += 1

    def record_fault(self, kind: str) -> None:
        """One fault-handling event from the read guard.

        Kinds: ``transient`` (injected read error seen), ``corruption``
        (checksum mismatch), ``retry`` (a retry attempt issued), and
        ``degraded`` (filter/index unreadable; fell back to scanning data
        blocks). Unknown kinds are counted under a lazily created series
        rather than dropped.
        """
        counter = self.fault_counters.get(kind)
        if counter is None:
            counter = self.fault_counters[kind] = self.registry.counter(
                f"fault_{kind}_total", f"fault events of kind {kind}", self.labels
            )
        counter.inc()

    def record_quarantine(self, file_id: Optional[int] = None) -> None:
        """A file crossed the corrupt-read threshold and was quarantined."""
        self.quarantine_total.inc()
        self.journal.emit("quarantine", file_id=file_id)

    def record_recovery(self, wall_s: float) -> None:
        """One completed crash recovery (manifest load + WAL replay)."""
        self.recoveries_total.inc()
        self.recovery_wall.record(wall_s)
        self.journal.emit("recovery", wall_s=wall_s)

    def record_event(self, event) -> None:
        """Per-level write accounting + journal entry from a CompactionEvent."""
        if event.bytes_out:
            self.level(event.dest).bytes_written += event.bytes_out
        if event.bytes_in:
            self.level(event.level).bytes_compacted_in += event.bytes_in
        kind = event.kind
        if kind == "flush":
            journal_kind = "flush"
        elif kind == "ingest":
            journal_kind = "ingest"
        else:  # full / partial / trivial_move merges
            journal_kind = "compaction_finish"
        self.journal.emit(journal_kind, compaction=kind, level=event.level,
                          dest=event.dest, bytes_in=event.bytes_in,
                          bytes_out=event.bytes_out, tick=event.tick)

    # -- reading --------------------------------------------------------------

    def level_io(self) -> Dict[int, dict]:
        return {no: stats.as_dict() for no, stats in sorted(self.levels.items())}


def observe_tree(tree, registry=None, sampling: float = 0.0, trace_capacity: int = 256):
    """Attach metrics and tracing to a tree in one call.

    Returns:
        ``(observer, recorder)``. A recorder is always created — with
        ``sampling=0.0`` it never fires, but the knob can be raised later
        without re-wiring the tree.
    """
    from repro.observe.tracing import TraceRecorder

    observer = EngineObserver(registry)
    recorder = TraceRecorder(capacity=trace_capacity, sampling=sampling)
    tree.observer = observer
    tree.tracer = recorder
    guard = getattr(tree.device, "guard", None)
    if guard is not None:
        guard.observer = observer  # fault/retry/quarantine events flow in too
    return observer, recorder


__all__ = ["EngineObserver", "LevelIOStats", "observe_tree", "WALL_MIN", "SIM_MIN"]
