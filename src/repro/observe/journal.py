"""Structured event journal: a bounded, thread-safe log of typed engine events.

This replaces the ad-hoc ``recent_events(n)`` strings as the primary record of
*what the engine did and when*: flushes, compaction start/finish with bytes
and levels, write-stall enter/exit, backpressure state transitions, file
quarantines, tenant throttling. Each event is a :class:`JournalEvent` — a
monotonic sequence number, a timestamp, a ``kind`` from :data:`EVENT_KINDS`,
and a flat field dict — and the whole journal exports as JSONL so offline
tooling (and ROADMAP item 2's tuning daemon) can replay the history.

The journal is bounded (ring semantics, oldest evicted) and every ``emit`` is
lock-protected, so flush threads, compaction workers, and server connection
handlers can all write to one journal without coordination.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

#: The typed vocabulary. ``emit`` rejects unknown kinds so producers cannot
#: silently fork the schema; extend this set when adding a producer.
EVENT_KINDS = frozenset({
    "flush",                 # memtable sealed + sorted run installed in L0
    "compaction_start",      # merge picked and about to execute
    "compaction_finish",     # outputs installed (kind: full/partial/trivial_move)
    "ingest",                # bulk ingest installed below the last level
    "stall_enter",           # backpressure began delaying/blocking writes
    "stall_exit",            # writes resumed
    "backpressure",          # controller state transition (ok/slowdown/stop)
    "quarantine",            # a file failed reads persistently and was fenced
    "tenant_throttle",       # fair-share admission delayed a tenant's op
    "recovery",              # crash recovery replayed the WAL
    "client_retry",          # server saw a retried idempotency token
    "request_shed",          # overload guard refused a request (overloaded)
    "dedup_hit",             # dedup table replayed a cached reply
    "note",                  # free-form (tests, tooling)
})


class JournalEvent:
    """One journal entry; immutable once emitted."""

    __slots__ = ("seq", "ts", "kind", "fields")

    def __init__(self, seq: int, ts: float, kind: str, fields: Dict[str, object]) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        out: Dict[str, object] = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        out.update(self.fields)
        return out

    def as_json_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"JournalEvent(#{self.seq} {self.kind} {self.fields!r})"


class EventJournal:
    """Bounded, thread-safe ring of :class:`JournalEvent`.

    Args:
        capacity: events retained (oldest evicted; ``emitted``/``evicted``
            counters keep the totals honest after wraparound).
        clock: timestamp source — wall clock by default, inject the engine's
            simulated clock for deterministic tests.
    """

    def __init__(self, capacity: int = 4096,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.clock = clock
        self._events: Deque[JournalEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.evicted = 0

    # -- writing ---------------------------------------------------------------

    def emit(self, kind: str, **fields) -> JournalEvent:
        """Append one typed event; returns it (mostly for tests)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown journal event kind: {kind!r}")
        with self._lock:
            self._seq += 1
            event = JournalEvent(self._seq, self.clock(), kind, dict(fields))
            if len(self._events) == self.capacity:
                self.evicted += 1
            self._events.append(event)
        return event

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (monotonic, survives eviction)."""
        return self._seq

    def events(self, n: Optional[int] = None, kind: Optional[str] = None,
               since_seq: int = 0) -> List[JournalEvent]:
        """Retained events oldest-first, optionally filtered by ``kind`` and/or
        ``seq > since_seq``, truncated to the most recent ``n``."""
        with self._lock:
            items = list(self._events)
        if kind is not None:
            items = [e for e in items if e.kind == kind]
        if since_seq:
            items = [e for e in items if e.seq > since_seq]
        if n is not None:
            items = items[-n:] if n > 0 else []
        return items

    def counts_by_kind(self) -> Dict[str, int]:
        """How many *retained* events of each kind (cheap health summary)."""
        out: Dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_jsonl(self, n: Optional[int] = None, kind: Optional[str] = None) -> str:
        """The retained events as JSON Lines (one event per line)."""
        return "\n".join(e.as_json_line() for e in self.events(n=n, kind=kind))

    def write_jsonl(self, path: str, n: Optional[int] = None) -> int:
        """Dump retained events to ``path`` as JSONL; returns events written."""
        events = self.events(n=n)
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(event.as_json_line())
                fh.write("\n")
        return len(events)

    def snapshot(self) -> dict:
        """JSON-able summary + the full retained window."""
        return {
            "capacity": self.capacity,
            "emitted": self.emitted,
            "evicted": self.evicted,
            "counts": self.counts_by_kind(),
            "events": [e.as_dict() for e in self.events()],
        }
