"""Secondary (non-key attribute) indexing over the LSM engine.

Tutorial §II-B.4 surveys secondary-index maintenance for log-structured
stores (Diff-Index EDBT'14, DELI CCGRID'15, Luo & Carey VLDB'19). The core
tension: the primary table is write-optimized, but keeping a secondary index
*exact* requires a read-before-write to clean the stale posting of the old
value. The three classical maintenance modes are provided:

* eager    — sync-full: read old record, delete stale posting, insert new
             (exact index; costly write path);
* lazy     — sync-insert: append the new posting only; queries validate
             candidates against the primary table (cheap writes, costlier
             queries, index grows stale);
* deferred — lazy writes plus batch cleaning cycles (DELI-style), bounding
             staleness without read-before-write.
"""

from repro.secondary.store import IndexMaintenance, SecondaryIndexedStore

__all__ = ["SecondaryIndexedStore", "IndexMaintenance"]
