"""A primary LSM table plus one secondary index, as composite-key postings.

The secondary index is itself an LSM tree (as in AsterixDB/HBase designs):
a posting is the composite key ``attribute_bytes || primary_key`` with an
empty value, so an attribute lookup is a prefix range scan. Both trees share
one block device, so all I/O accounting lands in one place.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree
from repro.errors import ConfigError


class IndexMaintenance(enum.Enum):
    """How secondary postings are kept in step with the primary table."""

    EAGER = "eager"
    LAZY = "lazy"
    DEFERRED = "deferred"


class SecondaryIndexedStore:
    """A key-value store with one secondary attribute index.

    Args:
        config: configuration for the primary tree; the index tree uses a
            derived configuration on the same device.
        extractor: maps a record value to its attribute bytes.
        attr_width: fixed attribute width; extracted attributes are
            zero-padded/truncated to it (composite-key ordering needs fixed
            width, like a fixed-length column).
        maintenance: EAGER, LAZY, or DEFERRED (see package docstring).
    """

    def __init__(
        self,
        config: LSMConfig,
        extractor: Callable[[bytes], bytes],
        attr_width: int = 8,
        maintenance: IndexMaintenance = IndexMaintenance.EAGER,
    ) -> None:
        if attr_width <= 0:
            raise ConfigError("attr_width must be positive")
        self.primary = LSMTree(config)
        index_config = config.replace(
            kv_separation=False, range_filter="none", wal_enabled=False
        )
        self.index = LSMTree(index_config, device=self.primary.device)
        self._extractor = extractor
        self._attr_width = attr_width
        self.maintenance = maintenance
        self.stale_postings_estimate = 0
        self.cleanings = 0

    # -- writes ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert/update a record, maintaining the secondary index."""
        new_attr = self._attr_of(value)
        if self.maintenance is IndexMaintenance.EAGER:
            old = self.primary.get(key)  # the read-before-write eager pays for
            if old.found:
                old_attr = self._attr_of(old.value)
                if old_attr != new_attr:
                    self.index.delete(self._posting(old_attr, key))
        else:
            self.stale_postings_estimate += 1  # upper bound; exact is unknowable
        self.primary.put(key, value)
        self.index.put(self._posting(new_attr, key), b"")

    def delete(self, key: bytes) -> None:
        """Delete a record (and, eagerly, its posting)."""
        if self.maintenance is IndexMaintenance.EAGER:
            old = self.primary.get(key)
            if old.found:
                self.index.delete(self._posting(self._attr_of(old.value), key))
        self.primary.delete(key)

    # -- reads -------------------------------------------------------------------

    def get(self, key: bytes):
        """Primary-key point lookup (unchanged by indexing)."""
        return self.primary.get(key)

    def query(self, attribute: bytes) -> List[Tuple[bytes, bytes]]:
        """All live records whose attribute equals ``attribute``.

        Scans the posting range, then validates each candidate against the
        primary table — mandatory under LAZY/DEFERRED (stale postings), and
        harmless under EAGER.
        """
        results = []
        for key, value in self._candidates(attribute):
            del value
            record = self.primary.get(key)
            if record.found and self._attr_of(record.value) == self._pad(attribute):
                results.append((key, record.value))
        return results

    def query_attribute_range(self, lo: bytes, hi: bytes) -> List[Tuple[bytes, bytes]]:
        """Records with attribute in the closed range [lo, hi]."""
        start = self._pad(lo)
        end = self._pad(hi) + b"\xff" * 16
        results = []
        for posting, _ in self.index.scan(start, end):
            key = posting[self._attr_width:]
            record = self.primary.get(key)
            if not record.found:
                continue
            attr = self._attr_of(record.value)
            if self._pad(lo) <= attr <= self._pad(hi) and posting[: self._attr_width] == attr:
                results.append((key, record.value))
        return results

    # -- maintenance ---------------------------------------------------------------

    def clean(self) -> int:
        """DEFERRED-mode batch cleaning: drop stale postings (DELI cycle).

        Returns:
            The number of stale postings removed.
        """
        removed = 0
        for posting, _ in list(self.index.scan()):
            attr, key = posting[: self._attr_width], posting[self._attr_width:]
            record = self.primary.get(key)
            if not record.found or self._attr_of(record.value) != attr:
                self.index.delete(posting)
                removed += 1
        self.index.compact_all()
        self.stale_postings_estimate = 0
        self.cleanings += 1
        return removed

    # -- internals -----------------------------------------------------------------

    def _pad(self, attribute: bytes) -> bytes:
        return attribute[: self._attr_width].ljust(self._attr_width, b"\x00")

    def _attr_of(self, value: bytes) -> bytes:
        return self._pad(self._extractor(value))

    def _posting(self, attribute: bytes, key: bytes) -> bytes:
        return self._pad(attribute) + key

    def _candidates(self, attribute: bytes) -> Iterator[Tuple[bytes, bytes]]:
        prefix = self._pad(attribute)
        for posting, value in self.index.scan(prefix, prefix + b"\xff" * 16):
            if posting[: self._attr_width] != prefix:
                break
            yield posting[self._attr_width:], value
