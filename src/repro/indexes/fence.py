"""Fence pointers: the classic per-block min-key index.

One key per data block (a special form of Zonemap); a binary search pins any
lookup to exactly one candidate block, so each run costs at most one data-block
I/O per point lookup — the baseline every other index is compared against.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence


class FencePointers:
    """Exact block index: one separator key per block.

    Args:
        keys: all keys of the run in sorted order.
        block_of_key: each key's data-block number (non-decreasing).
        shorten: store the *shortest separator* between adjacent blocks
            instead of the full first key (RocksDB's separator truncation):
            for previous-block last key ``a`` and first key ``b``, the
            shortest prefix of ``b`` strictly greater than ``a``. Exactness
            is preserved; long shared-prefix keys shrink dramatically.
    """

    def __init__(
        self, keys: Sequence[bytes], block_of_key: Sequence[int], shorten: bool = False
    ) -> None:
        if len(keys) != len(block_of_key):
            raise ValueError("keys and block_of_key must have equal length")
        first_keys: List[bytes] = []
        prev_last: List[bytes] = []
        last_block = -1
        for key, block in zip(keys, block_of_key):
            if block != last_block:
                if block != last_block + 1:
                    raise ValueError("block numbers must be contiguous and sorted")
                first_keys.append(key)
                prev_last.append(key)  # placeholder; fixed below
                last_block = block
            prev_last[-1] = key  # tracks the last key of the current block
        self._num_blocks = last_block + 1
        if shorten and first_keys:
            self._first_keys = [first_keys[0]] + [
                _shortest_separator(prev_last[i - 1], first_keys[i])
                for i in range(1, len(first_keys))
            ]
        else:
            self._first_keys = first_keys

    def locate(self, key: bytes) -> "tuple[int, int]":
        """Binary search the fences; always a single candidate block."""
        if not self._first_keys or key < self._first_keys[0]:
            return (0, -1)  # definitely absent: below the first block
        block = bisect.bisect_right(self._first_keys, key) - 1
        return (block, block)

    @property
    def size_bytes(self) -> int:
        """Key bytes plus an 8-byte offset per fence."""
        return sum(len(key) for key in self._first_keys) + 8 * len(self._first_keys)

    @property
    def num_blocks(self) -> int:
        return self._num_blocks


def _shortest_separator(lower: bytes, upper: bytes) -> bytes:
    """Shortest prefix of ``upper`` strictly greater than ``lower``.

    Requires ``lower < upper`` (guaranteed: they come from adjacent sorted
    blocks). The result ``s`` satisfies ``lower < s <= upper``, so it is a
    valid exact separator.
    """
    for length in range(1, len(upper)):
        candidate = upper[:length]
        if candidate > lower:
            return candidate
    return upper
