"""The search-index contract."""

from __future__ import annotations

import abc


class SearchIndex(abc.ABC):
    """Maps a key to the inclusive block range that may contain it.

    Indexes are built once per immutable run file from the sorted key list and
    each key's block number, and are never updated — the property that makes
    read-only learned indexes a good fit for LSM-trees (tutorial §II-B.4).
    """

    @abc.abstractmethod
    def locate(self, key: bytes) -> "tuple[int, int]":
        """Return ``(lo_block, hi_block)`` to probe, inclusive.

        An empty range (``lo > hi``) asserts the key is definitely absent and
        saves all I/O for the probe.
        """

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """In-memory footprint of the index payload."""
