"""REMIX-style globally-sorted view over multiple runs (Zhong et al.,
FAST 2021).

A range scan normally k-way-merges the qualifying runs, paying O(log k) key
comparisons per emitted entry and a seek per run. REMIX materializes the
*global* sort order across runs once — a sorted sequence of (key, source-run)
entries with sparse anchors — so scans become a binary search plus a linear
walk that pulls each entry from a pre-positioned per-run cursor, with no
per-entry heap work.

The view is built over an immutable set of runs (a snapshot); any compaction
that replaces those runs invalidates it, exactly as in the paper (REMIX
rebuilds alongside compactions). ``size_bytes`` reports the paper-style
encoding — one full anchor key every ``anchor_interval`` entries plus a
2-byte run id per entry — not the Python object overhead.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Iterator, List, Optional, Sequence

from repro.common.entry import Entry
from repro.storage.run import Run


class RemixView:
    """A materialized global sort order across runs.

    Args:
        runs: the snapshot's runs (any order; sequence numbers decide
            precedence, as everywhere in the engine).
        anchor_interval: keys between stored anchors in the size model.
        cache: optional block cache used for build and scan reads.
    """

    def __init__(self, runs: Sequence[Run], anchor_interval: int = 16, cache=None) -> None:
        if anchor_interval < 1:
            raise ValueError("anchor_interval must be at least 1")
        self._runs = list(runs)
        self._cache = cache
        self._anchor_interval = anchor_interval
        self._keys: List[bytes] = []
        self._run_of: List[int] = []
        self._build()

    # -- queries -----------------------------------------------------------------

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Entry]:
        """Yield live entries with ``start <= key <= end`` in global order.

        No per-entry merging: the view dictates which run supplies each key;
        per-run cursors advance sequentially, skipping shadowed versions.
        """
        first = 0 if start is None else bisect.bisect_left(self._keys, start)
        cursors: List[Optional[Iterator[Entry]]] = [None] * len(self._runs)
        for index in range(first, len(self._keys)):
            key = self._keys[index]
            if end is not None and key > end:
                return
            run_idx = self._run_of[index]
            cursor = cursors[run_idx]
            if cursor is None:
                cursor = self._runs[run_idx].iter_entries(start=key, cache=self._cache)
                cursors[run_idx] = cursor
            entry = _advance_to(cursor, key)
            if entry is not None:
                yield entry

    def seek(self, key: bytes) -> Optional[bytes]:
        """Smallest live key >= ``key`` (None past the end): one bisect."""
        index = bisect.bisect_left(self._keys, key)
        return self._keys[index] if index < len(self._keys) else None

    # -- metadata -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def size_bytes(self) -> int:
        """Paper-style encoding: sparse anchors + a run id per entry."""
        anchors = range(0, len(self._keys), self._anchor_interval)
        anchor_bytes = sum(len(self._keys[i]) for i in anchors)
        return anchor_bytes + 2 * len(self._keys)

    # -- internals -----------------------------------------------------------------

    def _build(self) -> None:
        """One tagged merging pass records the live global order."""
        heap: "list[tuple[bytes, int, int, Entry, Iterator[Entry]]]" = []
        for run_idx, run in enumerate(self._runs):
            stream = run.iter_entries(cache=self._cache)
            first = next(stream, None)
            if first is not None:
                heap.append((first.key, -first.seqno, run_idx, first, stream))
        heapq.heapify(heap)

        last_key: Optional[bytes] = None
        while heap:
            key, _, run_idx, entry, stream = heapq.heappop(heap)
            nxt = next(stream, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.key, -nxt.seqno, run_idx, nxt, stream))
            if key == last_key:
                continue  # an older, shadowed version
            last_key = key
            if entry.is_tombstone:
                continue  # the view indexes live data only
            self._keys.append(key)
            self._run_of.append(run_idx)


def _advance_to(cursor: Iterator[Entry], key: bytes) -> Optional[Entry]:
    """Advance a run cursor to ``key``, skipping its shadowed entries."""
    for entry in cursor:
        if entry.key == key:
            return entry
        if entry.key > key:
            return None  # view and run disagree: key vanished (stale view)
    return None
