"""Shared machinery for learned indexes."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def key_to_float(key: bytes) -> float:
    """Numeric view of a key: first 8 bytes as an unsigned big-endian integer.

    Distinct keys sharing an 8-byte prefix collapse to the same value; the
    error bounds are computed on these collapsed values, so correctness is
    preserved (predictions just get wider where collisions occur).
    """
    return float(int.from_bytes(key[:8].ljust(8, b"\x00"), "big"))


class PositionMapper:
    """Translates entry-position intervals into data-block intervals.

    Learned indexes predict *entry* positions; the SSTable needs *block*
    numbers. Built from the builder-provided ``block_of_key`` array.
    """

    def __init__(self, block_of_key: Sequence[int]) -> None:
        self._blocks = np.asarray(block_of_key, dtype=np.int64)
        if len(self._blocks) == 0:
            raise ValueError("block_of_key must be non-empty")

    def to_blocks(self, pos_lo: int, pos_hi: int) -> "tuple[int, int]":
        """Clamp an entry interval and return the covering block interval."""
        last = len(self._blocks) - 1
        pos_lo = max(0, min(pos_lo, last))
        pos_hi = max(0, min(pos_hi, last))
        return int(self._blocks[pos_lo]), int(self._blocks[pos_hi])

    def __len__(self) -> int:
        return len(self._blocks)
