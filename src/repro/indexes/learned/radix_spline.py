"""RadixSpline (Kipf et al., aiDM 2020): a single-pass learned index.

A greedy error-bounded spline over the (key, position) curve plus a radix
table over the top ``radix_bits`` of the key that narrows the spline-segment
search to a handful of candidates. Construction is a single pass with O(1)
state per step — the "low training time that does not affect ingestion
throughput" property the tutorial credits it with — and it is read-only,
matching run immutability.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

from repro.indexes.learned.common import PositionMapper, key_to_float

_KEY_BITS = 64


class RadixSplineIndex:
    """Radix table + error-bounded spline over a run's sorted keys.

    Args:
        keys: sorted key list.
        block_of_key: each key's block number.
        epsilon: spline error bound in entry positions.
        radix_bits: radix-table resolution (2^radix_bits slots).
    """

    def __init__(
        self,
        keys: Sequence[bytes],
        block_of_key: Sequence[int],
        epsilon: int = 16,
        radix_bits: int = 12,
    ) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be at least 1")
        if not 1 <= radix_bits <= 28:
            raise ValueError("radix_bits must be in [1, 28]")
        if not keys:
            raise ValueError("cannot build on an empty key list")
        self._epsilon = epsilon
        self._radix_bits = radix_bits
        self._mapper = PositionMapper(block_of_key)
        xs = [key_to_float(key) for key in keys]
        self._knot_x: List[float] = []
        self._knot_y: List[int] = []
        self._build_spline(xs)
        self._min_x = xs[0]
        self._max_x = xs[-1]
        self._build_radix_table()
        self._bound = self._certify(xs)

    def locate(self, key: bytes) -> "tuple[int, int]":
        x = key_to_float(key)
        pos = int(self._predict(x))
        return self._mapper.to_blocks(pos - self._bound, pos + self._bound + 1)

    @property
    def size_bytes(self) -> int:
        """16 bytes per spline knot + 4 bytes per radix slot."""
        return 16 * len(self._knot_x) + 4 * len(self._radix_table)

    @property
    def num_knots(self) -> int:
        return len(self._knot_x)

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def certified_bound(self) -> int:
        """The error bound actually used at lookup time."""
        return self._bound

    # -- internals -----------------------------------------------------------

    def _predict(self, x: float) -> float:
        seg = self._segment_for(x)
        x0, y0 = self._knot_x[seg], self._knot_y[seg]
        x1, y1 = self._knot_x[seg + 1], self._knot_y[seg + 1]
        if x1 == x0:
            return float(y0)
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0)

    def _certify(self, xs: List[float]) -> int:
        """Measure the true worst-case residual over the training keys."""
        worst = 0
        for pos, x in enumerate(xs):
            worst = max(worst, abs(pos - int(self._predict(x))))
        return max(self._epsilon, worst)

    def _build_spline(self, xs: List[float]) -> None:
        """GreedySplineCorridor: one pass, keeping an error corridor open."""
        eps = float(self._epsilon)
        self._knot_x.append(xs[0])
        self._knot_y.append(0)
        if len(xs) == 1:
            self._knot_x.append(xs[0])
            self._knot_y.append(0)
            return
        base_x, base_y = xs[0], 0.0
        slope_lo, slope_hi = float("-inf"), float("inf")
        last_candidate = (xs[1], 1)
        for i in range(1, len(xs)):
            dx = xs[i] - base_x
            if dx <= 0:
                last_candidate = (xs[i], i)
                continue
            lo = (i - base_y - eps) / dx
            hi = (i - base_y + eps) / dx
            new_lo = max(slope_lo, lo)
            new_hi = min(slope_hi, hi)
            if new_lo > new_hi:
                # Corridor collapsed: commit the previous point as a knot.
                knot_x, knot_y = last_candidate
                self._knot_x.append(knot_x)
                self._knot_y.append(knot_y)
                base_x, base_y = knot_x, float(knot_y)
                ndx = xs[i] - base_x
                if ndx > 0:
                    slope_lo = (i - base_y - eps) / ndx
                    slope_hi = (i - base_y + eps) / ndx
                else:
                    slope_lo, slope_hi = float("-inf"), float("inf")
            else:
                slope_lo, slope_hi = new_lo, new_hi
            last_candidate = (xs[i], i)
        self._knot_x.append(xs[-1])
        self._knot_y.append(len(xs) - 1)

    def _build_radix_table(self) -> None:
        """Slot r holds the first spline knot whose prefix is >= r."""
        slots = 1 << self._radix_bits
        span = self._max_x - self._min_x
        self._shift_scale = (slots - 1) / span if span > 0 else 0.0
        self._radix_table = [0] * (slots + 1)
        knot_prefixes = [self._prefix_of(x) for x in self._knot_x]
        knot = 0
        for slot in range(slots + 1):
            while knot < len(knot_prefixes) and knot_prefixes[knot] < slot:
                knot += 1
            self._radix_table[slot] = knot

    def _prefix_of(self, x: float) -> int:
        if self._shift_scale == 0.0:
            return 0
        clamped = min(max(x, self._min_x), self._max_x)
        return int((clamped - self._min_x) * self._shift_scale)

    def _segment_for(self, x: float) -> int:
        prefix = self._prefix_of(x)
        lo_knot = max(0, self._radix_table[prefix] - 1)
        hi_knot = min(len(self._knot_x) - 1, self._radix_table[min(prefix + 1, len(self._radix_table) - 1)] + 1)
        seg = bisect.bisect_right(self._knot_x, x, lo=lo_knot, hi=hi_knot) - 1
        return max(0, min(seg, len(self._knot_x) - 2))
