"""PGM-index (Ferragina & Vinciguerra, VLDB 2020): epsilon-bounded piecewise
linear approximation.

Segments are grown with the streaming *shrinking-cone* algorithm: a segment
keeps the interval of slopes that still place every covered point within
±epsilon of the line through the segment's first point; when a new point
empties the interval, a new segment starts. The result guarantees every
lookup lands within ``2 * epsilon + 1`` entries of the truth. Used here as a
read-only index on immutable runs (tutorial §II-B.4).
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

from repro.indexes.learned.common import PositionMapper, key_to_float


class PGMIndex:
    """One-level PGM over a run's sorted keys.

    Args:
        keys: sorted key list.
        block_of_key: each key's block number.
        epsilon: maximum entry-position error the segments guarantee.
    """

    def __init__(
        self, keys: Sequence[bytes], block_of_key: Sequence[int], epsilon: int = 16
    ) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be at least 1")
        if not keys:
            raise ValueError("cannot build on an empty key list")
        self._epsilon = epsilon
        self._mapper = PositionMapper(block_of_key)
        xs = [key_to_float(key) for key in keys]
        self._first_x: List[float] = []
        self._slopes: List[float] = []
        self._first_pos: List[int] = []
        self._build(xs)
        self._bound = self._certify(xs)

    def locate(self, key: bytes) -> "tuple[int, int]":
        x = key_to_float(key)
        seg = bisect.bisect_right(self._first_x, x) - 1
        if seg < 0:
            seg = 0
        predicted = self._first_pos[seg] + self._slopes[seg] * (x - self._first_x[seg])
        pos = int(predicted)
        return self._mapper.to_blocks(pos - self._bound, pos + self._bound + 1)

    @property
    def size_bytes(self) -> int:
        """Three 8-byte values per segment."""
        return 24 * len(self._first_x)

    @property
    def num_segments(self) -> int:
        return len(self._first_x)

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def certified_bound(self) -> int:
        """The error bound actually used at lookup time (>= construction bound
        only when duplicate numeric keys forced it wider)."""
        return self._bound

    # -- internals -----------------------------------------------------------

    def _certify(self, xs: List[float]) -> int:
        """Measure the true worst-case residual; guarantees no false misses."""
        worst = 0
        for pos, x in enumerate(xs):
            seg = bisect.bisect_right(self._first_x, x) - 1
            if seg < 0:
                seg = 0
            predicted = self._first_pos[seg] + self._slopes[seg] * (x - self._first_x[seg])
            worst = max(worst, abs(pos - int(predicted)))
        return max(self._epsilon, worst)

    def _build(self, xs: List[float]) -> None:
        """Shrinking-cone segmentation with the +-epsilon guarantee."""
        eps = float(self._epsilon)
        start = 0
        while start < len(xs):
            origin_x = xs[start]
            origin_y = float(start)
            slope_lo, slope_hi = float("-inf"), float("inf")
            end = start + 1
            while end < len(xs):
                dx = xs[end] - origin_x
                if dx <= 0:
                    # Duplicate numeric keys: the cone cannot distinguish
                    # them; they stay in the segment iff within epsilon.
                    if end - start <= eps:
                        end += 1
                        continue
                    break
                lo = (end - origin_y - eps) / dx
                hi = (end - origin_y + eps) / dx
                new_lo = max(slope_lo, lo)
                new_hi = min(slope_hi, hi)
                if new_lo > new_hi:
                    break
                slope_lo, slope_hi = new_lo, new_hi
                end += 1
            if slope_lo == float("-inf"):
                slope = 0.0
            else:
                slope = (slope_lo + slope_hi) / 2.0
            self._first_x.append(origin_x)
            self._first_pos.append(start)
            self._slopes.append(slope)
            start = end
