"""Learned block indexes (Bourbon / RMI / PGM / RadixSpline lineage).

All three map a numeric view of the key (first 8 bytes, big-endian) to a
predicted entry position with a certified error bound, then translate the
position interval into a data-block interval. Because runs are immutable the
indexes are trained once at file-build time, the property the tutorial calls
out as the reason learned indexes suit LSM-trees (§II-B.4).
"""

from repro.indexes.learned.common import key_to_float, PositionMapper
from repro.indexes.learned.rmi import RMIIndex
from repro.indexes.learned.pgm import PGMIndex
from repro.indexes.learned.radix_spline import RadixSplineIndex

__all__ = ["key_to_float", "PositionMapper", "RMIIndex", "PGMIndex", "RadixSplineIndex"]
