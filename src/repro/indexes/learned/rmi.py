"""Two-stage Recursive Model Index (Kraska et al., SIGMOD 2018).

Stage 1 is one linear model routing a key to one of ``num_leaves`` stage-2
linear models; each leaf records its worst-case over/under-prediction on the
training keys, so ``locate`` returns a certified interval. Training is two
passes of closed-form least squares — cheap enough not to hurt ingestion,
which is the property Google's production study [Abu-Libdeh et al. 2020]
emphasizes over fence pointers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.indexes.learned.common import PositionMapper, key_to_float


class RMIIndex:
    """Two-stage RMI over a run's sorted keys.

    Args:
        keys: sorted key list.
        block_of_key: each key's block number.
        num_leaves: stage-2 model count (more leaves = tighter errors, more
            memory: 4 floats per leaf).
    """

    def __init__(
        self, keys: Sequence[bytes], block_of_key: Sequence[int], num_leaves: int = 64
    ) -> None:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        xs = np.array([key_to_float(key) for key in keys], dtype=np.float64)
        if len(xs) == 0:
            raise ValueError("cannot train on an empty key list")
        ys = np.arange(len(xs), dtype=np.float64)
        self._mapper = PositionMapper(block_of_key)
        self._num_leaves = min(num_leaves, len(xs))

        # Stage 1: one linear model scaled to route into [0, num_leaves).
        self._root_slope, self._root_intercept = _fit_line(xs, ys / len(xs) * self._num_leaves)

        # Stage 2: per-leaf linear models with certified error bounds.
        leaf_of_key = np.clip(
            (self._root_slope * xs + self._root_intercept).astype(np.int64),
            0,
            self._num_leaves - 1,
        )
        self._slopes = np.zeros(self._num_leaves)
        self._intercepts = np.zeros(self._num_leaves)
        self._err_lo = np.zeros(self._num_leaves, dtype=np.int64)
        self._err_hi = np.zeros(self._num_leaves, dtype=np.int64)
        for leaf in range(self._num_leaves):
            mask = leaf_of_key == leaf
            if not mask.any():
                continue
            slope, intercept = _fit_line(xs[mask], ys[mask])
            predictions = slope * xs[mask] + intercept
            residuals = ys[mask] - predictions
            self._slopes[leaf] = slope
            self._intercepts[leaf] = intercept
            self._err_lo[leaf] = int(np.floor(residuals.min()))
            self._err_hi[leaf] = int(np.ceil(residuals.max()))

    def locate(self, key: bytes) -> "tuple[int, int]":
        x = key_to_float(key)
        leaf = int(self._root_slope * x + self._root_intercept)
        leaf = max(0, min(leaf, self._num_leaves - 1))
        predicted = self._slopes[leaf] * x + self._intercepts[leaf]
        pos_lo = int(np.floor(predicted + self._err_lo[leaf]))
        pos_hi = int(np.ceil(predicted + self._err_hi[leaf]))
        return self._mapper.to_blocks(pos_lo, pos_hi)

    @property
    def size_bytes(self) -> int:
        """Two root floats + four 8-byte values per leaf."""
        return 16 + 32 * self._num_leaves

    @property
    def max_error(self) -> int:
        """Widest certified interval across leaves (entries)."""
        return int((self._err_hi - self._err_lo).max())


def _fit_line(xs: np.ndarray, ys: np.ndarray) -> "tuple[float, float]":
    """Closed-form least squares, robust to constant x."""
    if len(xs) == 1 or xs.min() == xs.max():
        return 0.0, float(ys.mean())
    x_mean, y_mean = xs.mean(), ys.mean()
    denom = ((xs - x_mean) ** 2).sum()
    slope = ((xs - x_mean) * (ys - y_mean)).sum() / denom
    return float(slope), float(y_mean - slope * x_mean)
