"""Block search indexes (tutorial §II-B.1 and §II-B.4).

A search index maps a lookup key to the data block(s) of a run file that may
contain it. Classic fence pointers answer exactly; learned indexes answer
within an error bound at a fraction of the memory; a hash index answers in
O(1) CPU. All implement :class:`~repro.indexes.base.SearchIndex` and plug into
:class:`~repro.storage.sstable.SSTableBuilder` via ``index_factory``.
"""

from repro.indexes.base import SearchIndex
from repro.indexes.fence import FencePointers
from repro.indexes.hash_index import HashIndex
from repro.indexes.learned.rmi import RMIIndex
from repro.indexes.learned.pgm import PGMIndex
from repro.indexes.learned.radix_spline import RadixSplineIndex
from repro.indexes.remix import RemixView

INDEX_KINDS = {
    "fence": FencePointers,
    "hash": HashIndex,
    "rmi": RMIIndex,
    "pgm": PGMIndex,
    "radix_spline": RadixSplineIndex,
}


def make_index_factory(kind: str, **kwargs):
    """Return an ``index_factory`` callable for :class:`SSTableBuilder`.

    Args:
        kind: one of ``INDEX_KINDS``.
        **kwargs: forwarded to the index constructor.

    Raises:
        KeyError: for unknown kinds.
    """
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown index kind {kind!r}; expected one of {sorted(INDEX_KINDS)}"
        ) from None

    def factory(keys, block_of_key):
        return cls(keys, block_of_key, **kwargs)

    return factory


__all__ = [
    "SearchIndex",
    "RemixView",
    "FencePointers",
    "HashIndex",
    "RMIIndex",
    "PGMIndex",
    "RadixSplineIndex",
    "INDEX_KINDS",
    "make_index_factory",
]
