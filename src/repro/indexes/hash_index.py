"""Hash-based block index (LSM-trie / data-block-hash-index lineage).

Replaces the fence-pointer binary search with an O(1) hash probe, the CPU
optimization LSM-trie applies at file granularity and RocksDB's data-block
hash index applies inside blocks (tutorial §II-B.1, §II-B.4). The index also
answers definite absence for free, like a 0-false-positive filter, at the
price of ~10 bytes per key instead of per block.
"""

from __future__ import annotations

from typing import Dict, Sequence


class HashIndex:
    """Exact key-to-block hash map.

    Args:
        keys: all keys of the run in sorted order.
        block_of_key: each key's data-block number.
    """

    def __init__(self, keys: Sequence[bytes], block_of_key: Sequence[int]) -> None:
        if len(keys) != len(block_of_key):
            raise ValueError("keys and block_of_key must have equal length")
        self._block_of: Dict[bytes, int] = dict(zip(keys, block_of_key))
        self._key_bytes = sum(len(key) for key in keys)

    def locate(self, key: bytes) -> "tuple[int, int]":
        block = self._block_of.get(key)
        if block is None:
            return (0, -1)  # definitely absent
        return (block, block)

    @property
    def size_bytes(self) -> int:
        """Modeled as a 2-byte fingerprint + 4-byte block id per key.

        (A production hash index stores fingerprints, not full keys; the
        Python dict above keeps full keys only for correctness.)
        """
        return 6 * len(self._block_of)
