"""Chaos harness: randomized network-fault cycles asserting exactly-once.

The network analogue of :class:`repro.faults.harness.CrashHarness`, and
composable with it: a real :class:`~repro.server.LSMServer` (over a
:class:`~repro.faults.FaultyBlockDevice`, so storage crash points can fire
*simultaneously*) serves a retrying :class:`~repro.server.LSMClient` whose
every connection runs through an armed
:class:`~repro.chaos.FaultyTransport`. Each cycle schedules one named
network crash point plus the profile's background fault noise, drives a
randomized workload of puts, deletes, counter merges, and atomic
bank-transfer batches, then verifies over a *clean* connection:

* **exactly-once application** — counter merges are not idempotent (a
  replayed increment is visible), so every acked merge must read back as
  applied exactly once; a retried-and-deduped transfer batch that applied
  twice would push an account outside its {old, new} envelope.
* **zero acked-write loss** — every operation the retrying client saw
  succeed reads back exactly; a failed operation is *ambiguous* (the loss
  may have struck before or after execution) and must read back as either
  its old or its new state — never garbage, never twice.
* **no torn batches** — a transfer batch's two legs land together or not
  at all, and the total balance across accounts is conserved.
* **no hangs past deadline** — every operation returns (success or typed
  error) within its deadline plus the final backoff step and a scheduling
  slack; a blocked client is a violation even if the data is right.

With ``storage_crash=True`` each cycle also schedules a storage crash
point; when it fires the harness fail-stops the engine (the crashed
process), recovers from the surviving device, and restarts the server on
the same port — the full kill-and-recover path under network chaos. Run
it from the command line for the CI chaos matrix::

    PYTHONPATH=src python -m repro.chaos.harness --cycles 25 --seed 1
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.config import NETWORK_CRASH_POINTS, NetworkFaultConfig
from repro.chaos.transport import FaultyTransport
from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    SimulatedCrashError,
)
from repro.faults.config import FaultConfig
from repro.faults.device import FaultyBlockDevice
from repro.server import LSMClient, LSMServer, RemoteError, RetryPolicy, ServerConfig

#: Crossings each network point gets before its scheduled countdown is
#: considered un-fireable this cycle. ``connect`` only crosses on dials
#: (reconnects), so it gets a narrow window.
_NET_POINT_BUDGET = {
    "connect": 2,
    "before_send": 12,
    "mid_send": 12,
    "after_send_before_reply": 12,
    "duplicate_send": 12,
    "mid_reply": 12,
}

#: Storage crash points the combined tier draws from (a subset of
#: :data:`repro.faults.config.CRASH_POINTS` that the harness's small
#: write-heavy workload actually reaches) with their countdown budgets.
_STORAGE_POINT_BUDGET = {
    "wal_sync": 20,
    "device_append": 30,
    "flush_install": 2,
    "manifest_install": 3,
}

#: Background fault noise per profile, layered under the per-cycle named
#: crash point. ``points`` is deterministic-only; ``mixed`` ≈ a 5% lossy
#: network; ``storm`` ≈ a 15% one.
PROFILES: Dict[str, dict] = {
    "points": {},
    "mixed": dict(
        reset_prob=0.01, send_truncate_prob=0.01, drop_reply_prob=0.015,
        duplicate_prob=0.015, recv_truncate_prob=0.01,
        delay_prob=0.02, delay_s=0.002,
    ),
    "storm": dict(
        reset_prob=0.03, send_truncate_prob=0.03, drop_reply_prob=0.04,
        duplicate_prob=0.04, recv_truncate_prob=0.03,
        delay_prob=0.05, delay_s=0.002,
    ),
}


@dataclass
class CycleResult:
    """Outcome of one chaos cycle."""

    cycle: int
    crash_point: str
    countdown: int
    fired: bool  # did the scheduled network crash actually trigger?
    storage_crashes: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    retries: int = 0
    keys_checked: int = 0
    max_overshoot_s: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class HarnessReport:
    """Aggregate over a harness run; ``ok`` is the CI pass/fail bit."""

    cycles: List[CycleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cycle.ok for cycle in self.cycles)

    @property
    def crashes_fired(self) -> int:
        return sum(1 for c in self.cycles if c.fired)

    @property
    def storage_crashes(self) -> int:
        return sum(c.storage_crashes for c in self.cycles)

    @property
    def violations(self) -> List[str]:
        return [v for c in self.cycles for v in c.violations]

    def summary(self) -> str:
        return (
            f"{len(self.cycles)} cycles, {self.crashes_fired} network crashes, "
            f"{self.storage_crashes} storage crashes, "
            f"{sum(c.ops_acked for c in self.cycles)} acked ops, "
            f"{sum(c.retries for c in self.cycles)} retries, "
            f"{len(self.violations)} violations"
        )


class CrashFuseService:
    """Fail-stop fuse around a DBService: after the first
    :class:`SimulatedCrashError` every further call refuses, so a crashed
    engine cannot keep serving from possibly-inconsistent in-memory state
    (the server maps the error to an ``engine`` refusal; the harness then
    recovers from the device and restarts, like a process respawn)."""

    _GUARDED = frozenset({
        "get", "put", "merge", "delete", "multi_get", "scan", "write",
        "commit_transaction",
    })

    def __init__(self, service) -> None:
        self.service = service
        self.crashed = threading.Event()

    def __getattr__(self, name):
        attr = getattr(self.service, name)
        if name not in self._GUARDED:
            return attr

        def guarded(*args, **kwargs):
            if self.crashed.is_set():
                raise SimulatedCrashError("engine is down (fail-stop fuse)")
            try:
                return attr(*args, **kwargs)
            except SimulatedCrashError:
                self.crashed.set()
                raise

        return guarded


class ChaosHarness:
    """Drive workload → network faults → drain → verify cycles.

    State accumulates across cycles on one device and one long-lived
    retrying client, so late cycles exercise reconnects and dedup against
    a server with real history.

    Args:
        seed: master seed; every random choice derives from it.
        ops_per_cycle: workload operations attempted per cycle.
        profile: background fault noise (see :data:`PROFILES`).
        storage_crash: also schedule storage crash points each cycle and
            exercise the fail-stop → recover → restart path.
        deadline_s: per-operation client deadline.
        keyspace / counters / accounts: sizes of the three key families
            (blind puts+deletes, free counters, transfer accounts).
        config: tree configuration (``wal_enabled`` forced on).
    """

    def __init__(
        self,
        seed: int = 0,
        ops_per_cycle: int = 40,
        profile: str = "mixed",
        storage_crash: bool = False,
        deadline_s: float = 4.0,
        keyspace: int = 64,
        counters: int = 16,
        accounts: int = 8,
        config: Optional[LSMConfig] = None,
    ) -> None:
        if profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; valid: {', '.join(sorted(PROFILES))}"
            )
        self.seed = seed
        self.rng = random.Random(seed)
        self.ops_per_cycle = ops_per_cycle
        self.profile = profile
        self.storage_crash = storage_crash
        self.deadline_s = deadline_s
        self.keyspace = keyspace
        self.counters = counters
        self.accounts = accounts
        self.initial_balance = 1_000

        if config is None:
            config = LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=3, seed=seed
            )
        if not config.wal_enabled or config.wal_sync_interval != 1:
            config = config.replace(wal_enabled=True, wal_sync_interval=1)
        self.config = config
        self.device = FaultyBlockDevice(
            block_size=config.block_size,
            faults=FaultConfig(seed=seed),
            armed=False,
        )
        self.transport = FaultyTransport(
            NetworkFaultConfig(seed=seed + 1, **PROFILES[profile])
        )

        # The model: acknowledged state per kv key (None = acked absent),
        # committed int per counter/account key, and the per-key ambiguity
        # envelope for operations that failed mid-flight.
        self.kv: Dict[bytes, Optional[bytes]] = {}
        self.ints: Dict[bytes, int] = {}
        self.pending_kv: Dict[bytes, Tuple[Optional[bytes], Optional[bytes]]] = {}
        self.pending_int: Dict[bytes, Tuple[int, int]] = {}
        self.pending_batches: List[Tuple[bytes, bytes]] = []
        self._op_counter = 0
        self._port: Optional[int] = None
        self.server: Optional[LSMServer] = None
        self.fuse: Optional[CrashFuseService] = None
        self.client: Optional[LSMClient] = None
        self.clean: Optional[LSMClient] = None
        self._start_server(first=True)
        self._open_clients()
        self._init_accounts()

    # -- lifecycle -------------------------------------------------------------

    def _server_config(self) -> ServerConfig:
        return ServerConfig(
            port=self._port or 0,
            drain_timeout_s=1.0,
            idle_poll_s=0.01,
            stats_interval_s=0.0,
            slow_op_threshold_s=None,
            dedup_capacity=2048,
        )

    def _start_server(self, first: bool) -> None:
        from repro.service import DBService, ServiceConfig

        if first:
            tree = LSMTree(self.config, device=self.device)
        else:
            tree = LSMTree.recover(self.config, self.device)
        service = DBService(
            tree, config=ServiceConfig(max_batch_wait_s=0.0005), close_tree=True
        )
        self.fuse = CrashFuseService(service)
        self.server = LSMServer(self.fuse, self._server_config())
        host, port = self.server.start()
        # Pin the port on first start so a post-crash restart reuses it and
        # the long-lived clients' reconnects find the new server.
        self._port = port
        self._address = (host, port)

    def _open_clients(self) -> None:
        host, port = self._address
        self.client = LSMClient(
            host, port,
            timeout_s=1.0,
            retry=RetryPolicy(
                max_attempts=6, backoff_base_s=0.01, backoff_cap_s=0.08,
                jitter=0.5, deadline_s=self.deadline_s, seed=self.seed + 2,
            ),
            transport=self.transport,
        )
        self.clean = LSMClient(
            host, port,
            timeout_s=2.0,
            retry=RetryPolicy(
                max_attempts=8, backoff_base_s=0.01, backoff_cap_s=0.1,
                deadline_s=8.0, seed=self.seed + 3,
            ),
        )

    def _restart_server(self) -> None:
        """Fail-stop the crashed engine, recover from the device, restart."""
        self.device.disarm()
        self.server.shutdown(drain_timeout_s=0.5)
        inner = self.fuse.service
        inner.scheduler.close(drain=False)
        inner.tree.set_maintenance_callback(None)
        self._start_server(first=False)
        # Both clients hold sockets into the dead server; drop them so the
        # next operation re-dials the restarted one.
        self.client.disconnect()
        self.clean.disconnect()

    def close(self) -> None:
        for client in (self.client, self.clean):
            if client is not None:
                client.close()
        if self.server is not None:
            self.server.shutdown(drain_timeout_s=0.5)
        if self.fuse is not None:
            self.fuse.service.close()

    # -- workload --------------------------------------------------------------

    def _kv_key(self, index: int) -> bytes:
        return b"kv:%04d" % index

    def _ctr_key(self, index: int) -> bytes:
        return b"ctr:%03d" % index

    def _acct_key(self, index: int) -> bytes:
        return b"acct:%02d" % index

    def _init_accounts(self) -> None:
        ops = []
        for i in range(self.accounts):
            key = self._acct_key(i)
            self.ints[key] = self.initial_balance
            ops.append(("put", key, b"%d" % self.initial_balance))
        self.clean.batch(ops)

    def _pick_free(self, keys: List[bytes]) -> Optional[bytes]:
        """A key from ``keys`` with no unresolved ambiguity, or None."""
        for _ in range(8):
            key = keys[self.rng.randrange(len(keys))]
            if key not in self.pending_kv and key not in self.pending_int:
                return key
        return None

    def _run_one_op(self, result: CycleResult) -> None:
        self._op_counter += 1
        roll = self.rng.random()
        wall0 = time.monotonic()
        try:
            if roll < 0.45:  # put
                key = self._pick_free(
                    [self._kv_key(i) for i in range(self.keyspace)]
                )
                if key is None:
                    return
                value = b"v%08d" % self._op_counter
                old, new = self.kv.get(key), value
                self.client.put(key, value)
                self.kv[key] = value
            elif roll < 0.55:  # delete
                key = self._pick_free(
                    [self._kv_key(i) for i in range(self.keyspace)]
                )
                if key is None:
                    return
                old, new = self.kv.get(key), None
                self.client.delete(key)
                self.kv[key] = None
            elif roll < 0.80:  # counter merge — the non-idempotent detector
                key = self._pick_free(
                    [self._ctr_key(i) for i in range(self.counters)]
                )
                if key is None:
                    return
                delta = self.rng.randint(1, 9)
                old = self.ints.get(key, 0)
                new = old + delta
                self.client.merge(key, b"%d" % delta)
                self.ints[key] = new
            else:  # transfer batch: two counter merges, atomic, zero-sum
                i = self.rng.randrange(self.accounts)
                j = self.rng.randrange(self.accounts - 1)
                if j >= i:
                    j += 1
                a, b = self._acct_key(i), self._acct_key(j)
                if (
                    a in self.pending_int or b in self.pending_int
                    or a in self.pending_kv or b in self.pending_kv
                ):
                    return
                amount = self.rng.randint(1, 25)
                old_a, old_b = self.ints[a], self.ints[b]
                try:
                    self.client.batch([
                        ("merge", a, b"-%d" % amount, "counter"),
                        ("merge", b, b"%d" % amount, "counter"),
                    ])
                    self.ints[a], self.ints[b] = old_a - amount, old_b + amount
                except self._OP_ERRORS as exc:
                    self.pending_int[a] = (old_a, old_a - amount)
                    self.pending_int[b] = (old_b, old_b + amount)
                    self.pending_batches.append((a, b))
                    self._after_failure(exc, result)
                    return
                finally:
                    self._check_deadline(wall0, result)
                result.ops_acked += 1
                self._maybe_detect_storage_crash(result)
                return
        except self._OP_ERRORS as exc:
            # Ambiguous: the op may or may not have been applied. Freeze the
            # key in its {old, new} envelope until the cycle-end verify.
            if roll < 0.55:
                self.pending_kv[key] = (old, new)
                self.kv[key] = old  # model keeps the pre-op state for now
            else:
                self.pending_int[key] = (old, new)
                self.ints[key] = old
            self._after_failure(exc, result)
            return
        finally:
            self._check_deadline(wall0, result)
        result.ops_acked += 1
        self._maybe_detect_storage_crash(result)

    _OP_ERRORS = (ConnectionLostError, DeadlineExceededError, RemoteError)

    def _check_deadline(self, wall0: float, result: CycleResult) -> None:
        wall = time.monotonic() - wall0
        budget = (
            self.deadline_s
            + self.client.retry.backoff_cap_s
            + 0.75  # scheduling slack: threads, drains, CI noise
        )
        overshoot = wall - budget
        if overshoot > result.max_overshoot_s:
            result.max_overshoot_s = overshoot
        if overshoot > 0:
            result.violations.append(
                f"client op blocked {wall:.3f}s, past the {budget:.3f}s "
                f"deadline+backoff budget"
            )

    def _after_failure(self, exc: Exception, result: CycleResult) -> None:
        result.ops_failed += 1
        if isinstance(exc, RemoteError) and "SimulatedCrash" in str(exc):
            result.storage_crashes += 1
            self._restart_server()
        else:
            self._maybe_detect_storage_crash(result)

    def _maybe_detect_storage_crash(self, result: CycleResult) -> None:
        if not self.storage_crash:
            return
        inner = self.fuse.service
        crashed_bg = isinstance(
            getattr(inner.scheduler, "last_job_error", None), SimulatedCrashError
        )
        if crashed_bg or self.fuse.crashed.is_set():
            result.storage_crashes += 1
            self._restart_server()

    # -- drain + verification --------------------------------------------------

    def _drain(self) -> None:
        """Quiesce the server so no buffered duplicate can land *after* the
        verification reads (which would fake a lost/doubled write)."""
        self.transport.disarm()
        self.client.disconnect()
        self.clean.disconnect()
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            snap = self.server.stats_snapshot()["server"]
            if snap["connections_active"] == 0:
                return
            time.sleep(0.01)

    def _verify(self, result: CycleResult) -> None:
        # kv family: exact for committed, {old, new} for ambiguous.
        for key in sorted(self.kv):
            result.keys_checked += 1
            got = self.clean.get(key)
            observed = got.value if got.found else None
            if key in self.pending_kv:
                old, new = self.pending_kv[key]
                if observed != old and observed != new:
                    result.violations.append(
                        f"key {key!r}: {observed!r} is neither the pre-op "
                        f"({old!r}) nor post-op ({new!r}) state"
                    )
                self.kv[key] = observed
            elif observed != self.kv[key]:
                result.violations.append(
                    f"key {key!r}: acked state {self.kv[key]!r} read back "
                    f"as {observed!r}"
                )
        # int families: a doubled merge/batch leaves the {old, new} envelope.
        observed_ints: Dict[bytes, Optional[int]] = {}
        for key in sorted(self.ints):
            result.keys_checked += 1
            got = self.clean.get(key)
            observed = int(got.value) if got.found else None
            observed_ints[key] = observed
            if key in self.pending_int:
                old, new = self.pending_int[key]
                if observed != old and observed != new:
                    result.violations.append(
                        f"counter {key!r}: {observed} is neither {old} (not "
                        f"applied) nor {new} (applied once) — lost or "
                        f"double-applied"
                    )
                self.ints[key] = observed if observed is not None else 0
            elif observed != self.ints[key]:
                result.violations.append(
                    f"counter {key!r}: committed {self.ints[key]} read back "
                    f"as {observed}"
                )
        # Ambiguous transfers: atomic batches must not tear.
        for a, b in self.pending_batches:
            old_a, new_a = (
                self.pending_int[a] if a in self.pending_int else (None, None)
            )
            if old_a is None:
                continue
            old_b, new_b = self.pending_int[b]
            applied_a = observed_ints.get(a) == new_a and new_a != old_a
            applied_b = observed_ints.get(b) == new_b and new_b != old_b
            if applied_a != applied_b:
                result.violations.append(
                    f"torn batch: transfer {a!r}->{b!r} applied one leg "
                    f"without the other"
                )
        # Conservation: transfers are zero-sum and atomic, so the account
        # total never moves — not even under retries, crashes, or dedup.
        total = sum(
            observed_ints.get(self._acct_key(i)) or 0
            for i in range(self.accounts)
        )
        expected_total = self.accounts * self.initial_balance
        if total != expected_total:
            result.violations.append(
                f"conservation violated: account total {total} != "
                f"{expected_total}"
            )
        self.pending_kv.clear()
        self.pending_int.clear()
        self.pending_batches.clear()

    # -- the cycle -------------------------------------------------------------

    def run_cycle(self, cycle_no: int) -> CycleResult:
        point = NETWORK_CRASH_POINTS[
            self.rng.randrange(len(NETWORK_CRASH_POINTS))
        ]
        countdown = self.rng.randint(1, _NET_POINT_BUDGET.get(point, 8))
        result = CycleResult(
            cycle=cycle_no, crash_point=point, countdown=countdown, fired=False
        )
        fired_before = self.transport.stats().get(f"crash:{point}", 0)
        retries_before = self.client.stats_retries
        self.transport.schedule_crash(point, countdown)
        self.transport.arm()
        if self.storage_crash and cycle_no % 2 == 1:
            # Every other cycle also arms a storage crash, so the matrix
            # covers pure-network and combined tiers in one run.
            storage_point = self.rng.choice(sorted(_STORAGE_POINT_BUDGET))
            self.device.schedule_crash(
                storage_point,
                self.rng.randint(1, _STORAGE_POINT_BUDGET[storage_point]),
            )
            self.device.arm()
        try:
            for _ in range(self.ops_per_cycle):
                self._run_one_op(result)
        finally:
            self.device.disarm()
            self._drain()
        result.fired = (
            self.transport.stats().get(f"crash:{point}", 0) > fired_before
        )
        result.retries = self.client.stats_retries - retries_before
        self._verify(result)
        return result

    def run(self, cycles: int) -> HarnessReport:
        report = HarnessReport()
        for cycle_no in range(cycles):
            report.cycles.append(self.run_cycle(cycle_no))
        return report


# -- chaos-matrix CLI ---------------------------------------------------------


def run_matrix(
    seeds: List[int],
    cycles: int,
    profiles: List[str],
    storage_crash: bool = False,
    ops_per_cycle: int = 40,
    verbose: bool = False,
) -> Tuple[bool, List[dict]]:
    """The CI chaos matrix: seed × fault profile (× storage-crash tier).

    Returns:
        ``(ok, failures)`` where each failure dict pins the exact
        configuration and seed needed to replay it.
    """
    failures: List[dict] = []
    total = 0
    for seed in seeds:
        for profile in profiles:
            harness = ChaosHarness(
                seed=seed,
                profile=profile,
                storage_crash=storage_crash,
                ops_per_cycle=ops_per_cycle,
            )
            try:
                report = harness.run(cycles)
            finally:
                harness.close()
            total += len(report.cycles)
            if verbose:
                print(
                    f"seed={seed} profile={profile} "
                    f"storage_crash={storage_crash}: {report.summary()}"
                )
            if not report.ok:
                failures.append(
                    {
                        "seed": seed,
                        "profile": profile,
                        "storage_crash": storage_crash,
                        "violations": report.violations,
                    }
                )
    if verbose:
        print(f"matrix total: {total} cycles, {len(failures)} failing configs")
    return not failures, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=10, help="cycles per config")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        help="seed(s) for the matrix (repeatable)")
    parser.add_argument("--profile", action="append", default=None,
                        choices=sorted(PROFILES))
    parser.add_argument("--storage-crash", action="store_true",
                        help="also fire storage crash points (combined tier)")
    parser.add_argument("--ops", type=int, default=40,
                        help="operations per cycle")
    parser.add_argument("--failures-file", default=None,
                        help="write failing configurations here as JSON")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    ok, failures = run_matrix(
        seeds=args.seed or [1, 2],
        cycles=args.cycles,
        profiles=args.profile or ["mixed"],
        storage_crash=args.storage_crash,
        ops_per_cycle=args.ops,
        verbose=not args.quiet,
    )
    if args.failures_file and failures:
        import json

        with open(args.failures_file, "w") as fh:
            json.dump(failures, fh, indent=2)
    if not ok:
        print(
            f"FAIL: {len(failures)} configuration(s) violated exactly-once",
            file=sys.stderr,
        )
        for failure in failures:
            flag = " --storage-crash" if failure["storage_crash"] else ""
            print(
                f"  replay: --seed {failure['seed']} "
                f"--profile {failure['profile']}{flag}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
