"""repro.chaos — network fault injection and exactly-once verification.

The wire-level sibling of :mod:`repro.faults`: where that package crashes
the storage stack under a recovering engine, this one breaks the *network*
under a retrying client and asserts the end-to-end contract still holds —
every acknowledged write durable and applied exactly once, every failure a
typed error before the deadline, never a hang and never a double-applied
retry.

* :class:`NetworkFaultConfig` / :data:`NETWORK_CRASH_POINTS` — the seeded
  fault model: reset/truncate/duplicate/delay probabilities plus named
  crash points (``after_send_before_reply``, ``mid_reply``, …) that fire
  deterministically on a countdown;
* :class:`FaultyTransport` / :class:`ChaosSocket` — wrap real sockets on
  either side of the wire and perturb their byte streams, presenting
  faults as genuine ``ConnectionResetError`` / ``BrokenPipeError`` / EOF;
* :class:`ChaosHarness` — randomized workloads (including non-idempotent
  counter merges and atomic bank transfers) through randomized network
  faults, optionally with simultaneous storage crash points, verified
  over a clean connection each cycle. ``python -m repro.chaos.harness``
  runs the CI chaos matrix.

Quickstart::

    from repro.chaos import FaultyTransport, NetworkFaultConfig
    from repro.server import LSMClient, RetryPolicy

    transport = FaultyTransport(NetworkFaultConfig(seed=7, drop_reply_prob=0.05))
    transport.arm()
    client = LSMClient(host, port, retry=RetryPolicy(), transport=transport)
    client.put(b"k", b"v")   # retried + deduped under injected faults
"""

from repro.chaos.config import NETWORK_CRASH_POINTS, NetworkFaultConfig
from repro.chaos.harness import (
    ChaosHarness,
    CycleResult,
    HarnessReport,
    run_matrix,
)
from repro.chaos.transport import ChaosSocket, FaultyTransport

__all__ = [
    "NETWORK_CRASH_POINTS",
    "NetworkFaultConfig",
    "FaultyTransport",
    "ChaosSocket",
    "ChaosHarness",
    "CycleResult",
    "HarnessReport",
    "run_matrix",
]
