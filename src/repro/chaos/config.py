"""NetworkFaultConfig: every knob of the network fault model.

The wire analogue of :class:`repro.faults.FaultConfig`: one keyword-only,
validated object describes what the network does to a connection —
connection resets, frames cut mid-send or mid-reply, duplicated delivery,
added latency — plus *named network crash points* that fire
deterministically on a countdown, mirroring the storage injector's
``crash_points``. Determinism is the point: the same seed and call
sequence reproduce the same fault schedule, so the chaos-matrix CI job can
replay any failing cycle locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.config_base import kwonly_dataclass
from repro.errors import ConfigError

#: Named connection boundaries the injector can kill at. Each is a
#: countdown over that boundary's crossings on one transport (all wrapped
#: sockets share the countdowns, like storage crash points share the
#: device's), consumed when it fires:
#:
#: * ``connect`` — the dial itself fails (wrap-time reset).
#: * ``before_send`` — the connection dies before any request byte leaves.
#: * ``mid_send`` — a strict prefix of the frame is delivered, then reset
#:   (the peer sees a torn frame: bytes buffered, EOF mid-frame).
#: * ``after_send_before_reply`` — the full request lands and executes,
#:   but the connection dies before the reply is read: the *ambiguous
#:   loss* that makes idempotency tokens necessary.
#: * ``duplicate_send`` — the frame is delivered twice (a retransmit
#:   double-delivery), then the connection is poisoned; the server-side
#:   dedup table must absorb the second copy.
#: * ``mid_reply`` — the reply is cut after a strict prefix; the reader
#:   sees a short read inside a frame.
NETWORK_CRASH_POINTS = (
    "connect",
    "before_send",
    "mid_send",
    "after_send_before_reply",
    "duplicate_send",
    "mid_reply",
)


@kwonly_dataclass
@dataclass
class NetworkFaultConfig:
    """The fault model for a :class:`~repro.chaos.FaultyTransport`.

    Attributes:
        seed: base seed for the injector's private RNG; identical seeds and
            call sequences reproduce identical fault schedules.
        connect_fail_prob: per-dial probability the connection is refused
            at wrap time (the client sees a reset on first use).
        reset_prob: per-send probability the connection dies before any
            byte of this frame is delivered.
        send_truncate_prob: per-send probability a strict prefix of the
            frame is delivered, then the connection dies (torn frame).
        drop_reply_prob: per-send probability the frame is delivered in
            full but the connection dies immediately after — the sender
            never reads a reply (the ambiguous-loss case).
        duplicate_prob: per-send probability the frame is delivered twice
            before the connection is poisoned (retransmit double-delivery).
        recv_truncate_prob: per-recv probability the received chunk is cut
            to a strict prefix and the connection then dies (short read
            inside a frame).
        delay_prob: per-send/recv probability of an added latency stall.
        delay_s: the stall duration (real seconds — keep it small; it
            blocks the calling thread like real network latency would).
        crash_points: mapping ``point name -> countdown``; the Nth crossing
            of that boundary triggers the fault once. See
            :data:`NETWORK_CRASH_POINTS` for the vocabulary.
    """

    seed: int = 0
    connect_fail_prob: float = 0.0
    reset_prob: float = 0.0
    send_truncate_prob: float = 0.0
    drop_reply_prob: float = 0.0
    duplicate_prob: float = 0.0
    recv_truncate_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.001
    crash_points: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check value ranges; raises ConfigError (never a deep ValueError)."""
        for name in (
            "connect_fail_prob", "reset_prob", "send_truncate_prob",
            "drop_reply_prob", "duplicate_prob", "recv_truncate_prob",
            "delay_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ConfigError("delay_s must be non-negative")
        for name, point in self.crash_points.items():
            if name not in NETWORK_CRASH_POINTS:
                raise ConfigError(
                    f"unknown network crash point {name!r}; "
                    f"valid: {', '.join(NETWORK_CRASH_POINTS)}"
                )
            if point < 1:
                raise ConfigError(
                    f"crash point countdown for {name!r} must be >= 1"
                )

    def replace(self, **changes) -> "NetworkFaultConfig":
        """A copy with some fields changed (mirrors FaultConfig.replace)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    @property
    def fault_rate(self) -> float:
        """Aggregate per-send fault probability (for reporting only)."""
        return min(
            1.0,
            self.reset_prob + self.send_truncate_prob
            + self.drop_reply_prob + self.duplicate_prob,
        )
