"""FaultyTransport / ChaosSocket: seeded fault injection for the wire.

The network analogue of :class:`repro.faults.FaultyBlockDevice`: a
transport wraps real sockets (client-side after the dial, server-side
after the accept) and perturbs their byte streams — resets, mid-frame
truncation, duplicated delivery, added latency — from one seeded RNG, plus
named crash points that fire deterministically on a countdown
(:data:`~repro.chaos.config.NETWORK_CRASH_POINTS`).

Faults present themselves to the application exactly as real network
failures do: builtin ``ConnectionResetError`` / ``BrokenPipeError`` from
socket calls, short reads, and clean EOFs at the wrong moment — never a
library-specific exception — so the code under test exercises its real
error paths. A faulted connection is *poisoned*: once the injector has
killed it, every further use fails the same way, exactly like a closed TCP
peer. The poison style is itself randomized (reset vs. silent EOF) because
the two surface differently to a reader: a reset raises mid-call while an
EOF inside a buffered frame is a short-read decode error.

The transport is thread-safe (server handler threads share it) and keeps
per-fault counters so a harness can assert that the schedule it asked for
actually happened.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, Optional

from repro.chaos.config import NETWORK_CRASH_POINTS, NetworkFaultConfig

_POISON_RESET = "reset"
_POISON_EOF = "eof"


class ChaosSocket:
    """One wrapped connection; all fault decisions come from the transport.

    Only the byte-stream surface (``sendall``/``recv``/``close``) is
    intercepted; everything else (``settimeout``, ``setsockopt``,
    ``getsockname``, …) delegates to the real socket, so the wrapper drops
    into any code written against a blocking socket.
    """

    def __init__(self, transport: "FaultyTransport", sock) -> None:
        self._transport = transport
        self._sock = sock
        self._poison: Optional[str] = None

    def __getattr__(self, name):
        return getattr(self._sock, name)

    # -- fault plumbing --------------------------------------------------------

    def _poison_now(self, style: Optional[str] = None) -> None:
        self._poison = style or self._transport._pick_poison_style()

    def _check_poison(self, *, sending: bool) -> Optional[bytes]:
        """Raise/return the poisoned outcome, or None when healthy."""
        if self._poison is None:
            return None
        if sending or self._poison == _POISON_RESET:
            # A dead peer answers writes with a reset/broken pipe either way.
            exc = ConnectionResetError if not sending else BrokenPipeError
            raise exc("injected: connection is dead")
        return b""  # EOF-style poison: reads see a clean close

    # -- the intercepted surface -----------------------------------------------

    def sendall(self, data) -> None:
        eof = self._check_poison(sending=True)
        assert eof is None  # poison on the send path always raises
        t = self._transport
        t._maybe_delay()
        data = bytes(data)
        if t._fire("before_send", "reset_prob"):
            self._poison_now()
            t._note("reset")
            raise ConnectionResetError("injected reset before send")
        if len(data) > 1 and t._fire("mid_send", "send_truncate_prob"):
            prefix = t._rand_prefix_len(len(data))
            try:
                self._sock.sendall(data[:prefix])
            except OSError:
                pass
            self._poison_now()
            t._note("send_truncated")
            raise ConnectionResetError(
                f"injected reset mid-send ({prefix}/{len(data)} bytes delivered)"
            )
        if t._fire("duplicate_send", "duplicate_prob"):
            self._sock.sendall(data)
            self._sock.sendall(data)
            # The sender believes the connection then died: it never reads
            # the (two) replies, reconnects, and retries — the server-side
            # dedup table has to absorb all three copies.
            self._poison_now()
            t._note("duplicated")
            return
        if t._fire("after_send_before_reply", "drop_reply_prob"):
            self._sock.sendall(data)
            self._poison_now()
            t._note("reply_dropped")
            return
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        eof = self._check_poison(sending=False)
        if eof is not None:
            return eof
        t = self._transport
        t._maybe_delay()
        data = self._sock.recv(bufsize)
        if not data:
            return data
        if t._fire("mid_reply", "recv_truncate_prob"):
            self._poison_now()
            t._note("recv_truncated")
            if len(data) > 1:
                return data[: t._rand_prefix_len(len(data))]
            return data
        return data

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class FaultyTransport:
    """A seeded network-fault injector; ``wrap`` sockets, then ``arm`` it.

    Mirrors the :class:`~repro.faults.FaultyBlockDevice` control surface:
    disarmed by default (wrapped sockets behave perfectly), ``arm()`` /
    ``disarm()`` toggle injection, and :meth:`schedule_crash` pins a named
    point to fire on its Nth crossing. Crash-point countdowns are shared
    across every socket the transport wrapped — like storage crash points
    share the device — so "the 3rd request loses its reply" means the 3rd
    overall, wherever it lands.
    """

    def __init__(self, faults: Optional[NetworkFaultConfig] = None) -> None:
        self.faults = faults or NetworkFaultConfig()
        self._rng = random.Random(self.faults.seed)
        self._lock = threading.Lock()
        self._armed = False
        self._crash_points: Dict[str, int] = dict(self.faults.crash_points)
        self._counts: Dict[str, int] = {}

    # -- control ---------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        self._armed = True

    def disarm(self) -> None:
        self._armed = False

    def schedule_crash(self, point: str, countdown: int = 1) -> None:
        """Fire ``point`` on its Nth crossing (replaces any pending one)."""
        if point not in NETWORK_CRASH_POINTS:
            raise ValueError(
                f"unknown network crash point {point!r}; "
                f"valid: {', '.join(NETWORK_CRASH_POINTS)}"
            )
        if countdown < 1:
            raise ValueError("countdown must be >= 1")
        with self._lock:
            self._crash_points[point] = countdown

    def pending_crashes(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._crash_points)

    def stats(self) -> Dict[str, int]:
        """Faults actually injected, by kind (plus sockets wrapped)."""
        with self._lock:
            return dict(self._counts)

    # -- wrapping --------------------------------------------------------------

    def wrap(self, sock) -> ChaosSocket:
        """Wrap a connected socket; never raises (a ``connect`` fault
        returns a pre-poisoned socket whose first use fails, which is how a
        refused dial looks to code that already holds the object)."""
        wrapped = ChaosSocket(self, sock)
        self._note("wrapped")
        if self._fire("connect", "connect_fail_prob"):
            wrapped._poison_now(_POISON_RESET)
            self._note("connect_failed")
        return wrapped

    # -- decisions (internal; ChaosSocket calls these) -------------------------

    def _fire(self, point: str, prob_field: str) -> bool:
        """One boundary crossing: countdown first, then the probabilistic
        mirror. Disarmed transports never fire."""
        if not self._armed:
            return False
        with self._lock:
            remaining = self._crash_points.get(point)
            if remaining is not None:
                if remaining <= 1:
                    del self._crash_points[point]
                    self._counts[f"crash:{point}"] = (
                        self._counts.get(f"crash:{point}", 0) + 1
                    )
                    return True
                self._crash_points[point] = remaining - 1
            prob = getattr(self.faults, prob_field)
            return prob > 0 and self._rng.random() < prob

    def _pick_poison_style(self) -> str:
        with self._lock:
            return _POISON_RESET if self._rng.random() < 0.5 else _POISON_EOF

    def _rand_prefix_len(self, total: int) -> int:
        """A strict prefix length in ``[1, total)``."""
        with self._lock:
            return self._rng.randint(1, total - 1)

    def _maybe_delay(self) -> None:
        if not self._armed or self.faults.delay_prob <= 0:
            return
        with self._lock:
            stall = self._rng.random() < self.faults.delay_prob
        if stall:
            self._note("delayed")
            time.sleep(self.faults.delay_s)

    def _note(self, kind: str) -> None:
        with self._lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1
