"""``python -m repro`` — a 30-second guided demo of the library.

Runs a miniature version of the design-space tour and prints where to go
next (examples, experiments, tests).
"""

from __future__ import annotations

import sys

from repro import LSMConfig, LSMTree, __version__, encode_uint_key
from repro.bench.harness import preload_tree, run_operations
from repro.bench.report import print_table
from repro.workloads.spec import OperationMix, uniform_spec


def demo() -> None:
    print(f"repro {__version__} — The LSM Design Space and its Read Optimizations")
    print("Building three small trees (leveling / tiering / lazy_leveling)...")
    rows = []
    for layout in ("leveling", "tiering", "lazy_leveling"):
        tree = LSMTree(
            LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=4,
                layout=layout, bits_per_key=10.0, cache_bytes=32 << 10, seed=1,
            )
        )
        preload_tree(tree, 2000, value_size=40)
        spec = uniform_spec(2000, OperationMix(put=0.4, get=0.6), value_size=40, seed=2)
        metrics = run_operations(tree, spec.operations(2000))
        rows.append(
            [
                layout,
                tree.num_levels,
                tree.total_runs,
                round(tree.write_amplification, 2),
                round(metrics.reads_per_get, 3),
                round(tree.stats.filter_fpr_observed, 4),
            ]
        )
    print_table(
        "the read/write tradeoff, in one table",
        ["layout", "levels", "runs", "write_amp", "io/get", "filter_fpr"],
        rows,
    )
    # Sanity-check the demo's own story before claiming it.
    by_layout = {row[0]: row for row in rows}
    assert by_layout["tiering"][3] <= by_layout["leveling"][3]
    print(
        "\nNext steps:\n"
        "  python examples/quickstart.py               # the API tour\n"
        "  python examples/design_space_tour.py        # 20 design points\n"
        "  pytest benchmarks/ --benchmark-only         # all experiments (E1-E16)\n"
        "  pytest tests/                               # the test suite\n"
        "See README.md, DESIGN.md, and EXPERIMENTS.md for the full map."
    )


if __name__ == "__main__":
    sys.exit(demo())
