"""``python -m repro`` — the CLI: demo tour, stats dumps, and read traces.

Subcommands:

* ``demo`` (the default) — the 30-second guided tour of the design space;
* ``stats`` — run an instrumented workload and print the RocksDB-style
  per-level table plus latency percentiles (``--format table|prometheus|
  json`` selects the export surface);
* ``trace`` — run with read-path tracing enabled and print the recorded
  spans with their per-stage latency breakdowns;
* ``serve`` — run the framed-protocol network server (``repro.server``)
  over a concurrent, observed engine; ``--smoke-test`` runs a built-in
  multi-tenant load against it and exits, for CI.

Every subcommand exits non-zero with a one-line ``error: ...`` message on
failure — no tracebacks for expected error classes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import LSMConfig, LSMTree, __version__
from repro.bench.harness import preload_tree, run_operations
from repro.bench.report import format_table, print_table
from repro.workloads.spec import OperationMix, uniform_spec


def demo() -> int:
    print(f"repro {__version__} — The LSM Design Space and its Read Optimizations")
    print("Building three small trees (leveling / tiering / lazy_leveling)...")
    rows = []
    for layout in ("leveling", "tiering", "lazy_leveling"):
        tree = LSMTree(
            LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=4,
                layout=layout, bits_per_key=10.0, cache_bytes=32 << 10, seed=1,
            )
        )
        preload_tree(tree, 2000, value_size=40)
        spec = uniform_spec(2000, OperationMix(put=0.4, get=0.6), value_size=40, seed=2)
        metrics = run_operations(tree, spec.operations(2000))
        rows.append(
            [
                layout,
                tree.num_levels,
                tree.total_runs,
                round(tree.write_amplification, 2),
                round(metrics.reads_per_get, 3),
                round(tree.stats.filter_fpr_observed, 4),
            ]
        )
    print_table(
        "the read/write tradeoff, in one table",
        ["layout", "levels", "runs", "write_amp", "io/get", "filter_fpr"],
        rows,
    )
    # Sanity-check the demo's own story before claiming it.
    by_layout = {row[0]: row for row in rows}
    assert by_layout["tiering"][3] <= by_layout["leveling"][3]
    print(
        "\nNext steps:\n"
        "  python -m repro stats                       # per-level stats + percentiles\n"
        "  python -m repro trace --sampling 1.0        # read-path spans\n"
        "  python examples/quickstart.py               # the API tour\n"
        "  python examples/design_space_tour.py        # 20 design points\n"
        "  pytest benchmarks/ --benchmark-only         # all experiments (E1-E16)\n"
        "  pytest tests/                               # the test suite\n"
        "See README.md, DESIGN.md, and EXPERIMENTS.md for the full map."
    )
    return 0


def _instrumented_run(
    ops: int, keys: int, sampling: float, trace_capacity: int = 256, seed: int = 1
):
    """Build a small observed tree and drive a mixed workload through it.

    Returns (tree, registry, recorder) with the workload already applied.
    """
    from repro.observe import MetricsRegistry, observe_tree

    tree = LSMTree(
        LSMConfig(
            buffer_bytes=8 << 10, block_size=512, size_ratio=4,
            layout="leveling", bits_per_key=10.0, cache_bytes=64 << 10, seed=seed,
        )
    )
    preload_tree(tree, keys, value_size=40)
    registry = MetricsRegistry()
    _, recorder = observe_tree(
        tree, registry, sampling=sampling, trace_capacity=trace_capacity
    )
    spec = uniform_spec(
        keys,
        OperationMix(put=0.30, get=0.65, scan=0.05),
        value_size=40,
        seed=seed + 1,
        scan_length=32,
    )
    for op in spec.operations(ops):
        if op.kind == "put":
            tree.put(op.key, op.value)
        elif op.kind == "get":
            tree.get(op.key)
        elif op.kind == "scan":
            for _ in tree.scan(op.key, op.end_key):
                pass
    return tree, registry, recorder


def stats_command(args: argparse.Namespace) -> int:
    """Per-level stats table and latency percentiles for a demo workload."""
    from repro.observe import export_level_gauges, render_dump, to_json, to_prometheus

    sampling = args.sampling if args.format == "json" else 0.0
    tree, registry, recorder = _instrumented_run(
        ops=args.ops, keys=args.keys, sampling=sampling
    )
    if args.format == "prometheus":
        export_level_gauges(tree, registry)
        sys.stdout.write(to_prometheus(registry))
    elif args.format == "json":
        print(to_json(registry, tree=tree, recorder=recorder))
    else:
        print(f"repro {__version__} — engine stats ({args.ops} ops, {args.keys} keys)")
        print(render_dump(registry, tree))
    return 0


def trace_command(args: argparse.Namespace) -> int:
    """Record read-path spans and print their stage breakdowns."""
    _, _, recorder = _instrumented_run(
        ops=args.ops,
        keys=args.keys,
        sampling=args.sampling,
        trace_capacity=max(args.limit, 1),
    )
    spans = recorder.spans(args.limit)
    stats = recorder.snapshot()
    print(
        f"repro {__version__} — read-path traces "
        f"(sampling={args.sampling}, sampled={stats['sampled']}, "
        f"dropped={stats['dropped']}, showing {len(spans)})"
    )
    if not spans:
        print("no spans recorded; raise --sampling (0 disables tracing)")
        return 0
    rows = []
    for index, span in enumerate(spans):
        stages = " ".join(f"{name}={duration:.2e}" for name, duration in span.stages)
        rows.append(
            [
                index,
                span.name,
                f"{span.total:.2e}",
                span.attrs.get("found", ""),
                span.attrs.get("blocks_read", ""),
                stages,
            ]
        )
    print(format_table(["#", "op", "total_s", "found", "blocks", "stages"], rows))
    return 0


def serve_command(args: argparse.Namespace) -> int:
    """Serve the framed protocol over TCP; ``--smoke-test`` drives itself.

    The server fronts a concurrent, observed :class:`~repro.service.DBService`
    (group commit, background maintenance, backpressure) and exports every
    engine and ``server_*`` metric through the stats frame.
    """
    import json as _json
    import signal
    import threading

    import repro
    from repro.server import LSMServer, ServerConfig, TenantLoad, run_load

    service = repro.open(service=True, observe=True)
    registry = service.observer.registry
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        tenant_ops_per_second=args.tenant_rate,
        tenant_burst_ops=args.tenant_burst,
    )
    server = LSMServer(
        service, server_config, registry=registry, close_service=True
    )
    server.start()
    host, port = server.address
    print(f"repro {__version__} — serving on {host}:{port}", flush=True)
    if server_config.tenant_ops_per_second:
        print(
            f"fair-share admission: {server_config.tenant_ops_per_second:g} "
            "ops/s per tenant",
            flush=True,
        )

    if args.smoke_test:
        try:
            from repro.observe import MetricsRegistry
            from repro.workloads.spec import OperationMix

            client_registry = MetricsRegistry()
            tenants = [
                TenantLoad(
                    tenant=f"smoke{i}",
                    clients=args.clients,
                    ops_per_client=args.ops,
                    mix=OperationMix(put=0.4, get=0.5, scan=0.1),
                    keyspace=500,
                    seed=11 + i,
                )
                for i in range(args.tenant_count)
            ]
            results = run_load(host, port, tenants, registry=client_registry)
            snapshot = server.stats_snapshot()
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as fh:
                    _json.dump(snapshot, fh, indent=2, sort_keys=True, default=str)
                print(f"metrics snapshot written to {args.metrics_out}")
            total_ops = sum(r.operations for r in results.values())
            protocol_errors = sum(r.protocol_errors for r in results.values())
            remote_errors = sum(r.remote_errors for r in results.values())
            fatal = [e for r in results.values() for e in r.errors]
            for result in results.values():
                p99 = result.latency.get("p99", 0.0)
                print(
                    f"  {result.tenant}: {result.operations} ops "
                    f"({result.ops_per_second:.0f} ops/s, p99 {p99 * 1e3:.2f} ms)"
                )
            print(
                f"smoke test: {total_ops} ops, "
                f"{protocol_errors} protocol errors, "
                f"{remote_errors} remote errors"
            )
            expected = args.tenant_count * args.clients * args.ops
            ok = (
                protocol_errors == 0
                and remote_errors == 0
                and not fatal
                and total_ops == expected
            )
            if not ok:
                for line in fatal[:8]:
                    print(f"  fatal: {line}", file=sys.stderr)
                print(
                    f"error: smoke test failed ({total_ops}/{expected} ops ok)",
                    file=sys.stderr,
                )
            return 0 if ok else 1
        finally:
            server.shutdown()

    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (tests drive this path)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        print("\nshutting down...", flush=True)
    finally:
        server.shutdown()
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("demo", help="the 30-second guided tour (the default)")

    stats = sub.add_parser("stats", help="per-level stats and latency percentiles")
    stats.add_argument(
        "--demo",
        action="store_true",
        help="use the built-in demo workload (the default data source)",
    )
    stats.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="export surface (default: the human table)",
    )
    stats.add_argument("--ops", type=int, default=3000, help="operations to drive")
    stats.add_argument("--keys", type=int, default=2000, help="keyspace size")
    stats.add_argument(
        "--sampling",
        type=float,
        default=0.1,
        help="trace sampling fraction for the json export's trace section",
    )

    trace = sub.add_parser("trace", help="sampled read-path span breakdowns")
    trace.add_argument(
        "--sampling", type=float, default=1.0, help="span sampling fraction in [0, 1]"
    )
    trace.add_argument("--ops", type=int, default=500, help="operations to drive")
    trace.add_argument("--keys", type=int, default=1000, help="keyspace size")
    trace.add_argument("--limit", type=int, default=10, help="spans to print")

    serve = sub.add_parser(
        "serve", help="run the framed-protocol network server (repro.server)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--max-connections", type=int, default=64, help="concurrent connection cap"
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="fair-share admission: ops/s granted to each tenant (default: off)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="admission burst allowance in ops (default: one second of rate)",
    )
    serve.add_argument(
        "--smoke-test",
        action="store_true",
        help="start, drive a multi-tenant load against yourself, report, exit",
    )
    serve.add_argument(
        "--tenant-count", type=int, default=2, help="smoke test: tenants to drive"
    )
    serve.add_argument(
        "--clients", type=int, default=2, help="smoke test: connections per tenant"
    )
    serve.add_argument(
        "--ops", type=int, default=150, help="smoke test: operations per connection"
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="smoke test: write the server's JSON stats snapshot here",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        if args.command == "stats":
            return stats_command(args)
        if args.command == "trace":
            return trace_command(args)
        if args.command == "serve":
            return serve_command(args)
        return demo()
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
