"""``python -m repro`` — the CLI: demo tour, stats dumps, and read traces.

Subcommands:

* ``demo`` (the default) — the 30-second guided tour of the design space;
* ``stats`` — run an instrumented workload and print the RocksDB-style
  per-level table plus latency percentiles (``--format table|prometheus|
  json`` selects the export surface); ``--live`` instead renders a
  redrawing time-series dashboard, either over a local demo workload or —
  with ``--connect HOST:PORT`` — from a running server's ``stats_history``
  frames;
* ``trace`` — run with read-path tracing enabled and print the recorded
  spans with their per-stage latency breakdowns;
* ``serve`` — run the framed-protocol network server (``repro.server``)
  over a concurrent, observed engine; ``--smoke-test`` runs a built-in
  multi-tenant load against it and exits, for CI.

Every subcommand exits non-zero with a one-line ``error: ...`` message on
failure — no tracebacks for expected error classes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import LSMConfig, LSMTree, __version__
from repro.bench.harness import preload_tree, run_operations
from repro.bench.report import format_table, print_table
from repro.workloads.spec import OperationMix, uniform_spec


def demo() -> int:
    print(f"repro {__version__} — The LSM Design Space and its Read Optimizations")
    print("Building three small trees (leveling / tiering / lazy_leveling)...")
    rows = []
    for layout in ("leveling", "tiering", "lazy_leveling"):
        tree = LSMTree(
            LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=4,
                layout=layout, bits_per_key=10.0, cache_bytes=32 << 10, seed=1,
            )
        )
        preload_tree(tree, 2000, value_size=40)
        spec = uniform_spec(2000, OperationMix(put=0.4, get=0.6), value_size=40, seed=2)
        metrics = run_operations(tree, spec.operations(2000))
        rows.append(
            [
                layout,
                tree.num_levels,
                tree.total_runs,
                round(tree.write_amplification, 2),
                round(metrics.reads_per_get, 3),
                round(tree.stats.filter_fpr_observed, 4),
            ]
        )
    print_table(
        "the read/write tradeoff, in one table",
        ["layout", "levels", "runs", "write_amp", "io/get", "filter_fpr"],
        rows,
    )
    # Sanity-check the demo's own story before claiming it.
    by_layout = {row[0]: row for row in rows}
    assert by_layout["tiering"][3] <= by_layout["leveling"][3]
    print(
        "\nNext steps:\n"
        "  python -m repro stats                       # per-level stats + percentiles\n"
        "  python -m repro trace --sampling 1.0        # read-path spans\n"
        "  python examples/quickstart.py               # the API tour\n"
        "  python examples/design_space_tour.py        # 20 design points\n"
        "  pytest benchmarks/ --benchmark-only         # all experiments (E1-E16)\n"
        "  pytest tests/                               # the test suite\n"
        "See README.md, DESIGN.md, and EXPERIMENTS.md for the full map."
    )
    return 0


def _instrumented_run(
    ops: int, keys: int, sampling: float, trace_capacity: int = 256, seed: int = 1
):
    """Build a small observed tree and drive a mixed workload through it.

    Returns (tree, registry, recorder) with the workload already applied.
    """
    from repro.observe import MetricsRegistry, observe_tree

    tree = LSMTree(
        LSMConfig(
            buffer_bytes=8 << 10, block_size=512, size_ratio=4,
            layout="leveling", bits_per_key=10.0, cache_bytes=64 << 10, seed=seed,
        )
    )
    preload_tree(tree, keys, value_size=40)
    registry = MetricsRegistry()
    _, recorder = observe_tree(
        tree, registry, sampling=sampling, trace_capacity=trace_capacity
    )
    spec = uniform_spec(
        keys,
        OperationMix(put=0.30, get=0.65, scan=0.05),
        value_size=40,
        seed=seed + 1,
        scan_length=32,
    )
    for op in spec.operations(ops):
        if op.kind == "put":
            tree.put(op.key, op.value)
        elif op.kind == "get":
            tree.get(op.key)
        elif op.kind == "scan":
            for _ in tree.scan(op.key, op.end_key):
                pass
    return tree, registry, recorder


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 30) -> str:
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_BLOCKS[0] * len(vals)
    scale = (len(_SPARK_BLOCKS) - 1) / (hi - lo)
    return "".join(_SPARK_BLOCKS[int((v - lo) * scale)] for v in vals)


def _render_history_frame(payload: dict, max_rows: int = 18) -> str:
    """One dashboard frame from a ``TimeSeriesSampler.as_dict()`` payload."""
    series = payload.get("series", {})
    rows = []
    for name in sorted(series):
        data = series[name]
        ts, vals = data.get("t", []), data.get("v", [])
        if data.get("kind") == "cumulative":
            # Differentiate on read: show the per-second rate, not the total.
            rates = [
                (v1 - v0) / (t1 - t0)
                for (t0, v0), (t1, v1) in zip(zip(ts, vals), zip(ts[1:], vals[1:]))
                if t1 > t0
            ]
            if not rates:
                continue
            rows.append((f"{name}/s", rates))
        elif vals:
            rows.append((name, vals))

    def _priority(row) -> int:
        label = row[0]
        for rank, prefix in enumerate(
            ("cache_hit_ratio", "stall_fraction", "read_fraction",
             "engine_gets", "engine_puts", "level", "server_requests")
        ):
            if label.startswith(prefix):
                return rank
        return 99

    rows.sort(key=lambda row: (_priority(row), row[0]))
    lines = [
        f"repro {__version__} — live series "
        f"(samples={payload.get('samples', 0)}, "
        f"series={len(series)}, showing {min(len(rows), max_rows)})"
    ]
    for label, vals in rows[:max_rows]:
        lines.append(f"  {label:<34} {vals[-1]:>12.4g}  {_sparkline(vals)}")
    return "\n".join(lines)


def _emit_live_frame(frame: str) -> None:
    if sys.stdout.isatty():
        # Redraw in place (home + clear-to-end); no curses dependency.
        sys.stdout.write("\x1b[H\x1b[J" + frame + "\n")
    else:
        sys.stdout.write(frame + "\n" + "-" * 72 + "\n")
    sys.stdout.flush()


def stats_live_command(args: argparse.Namespace) -> int:
    """Live dashboard: scrape-and-redraw loop, local or over the wire."""
    import json as _json
    import threading
    import time as _time

    frames = max(1, int(round(args.duration / args.interval)))
    payload = None

    if args.connect:
        from repro.server.client import LSMClient

        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
                  file=sys.stderr)
            return 1
        client = LSMClient(host, int(port))
        try:
            for _ in range(frames):
                payload = client.stats_history()
                _emit_live_frame(_render_history_frame(payload))
                _time.sleep(args.interval)
        finally:
            client.close()
    else:
        from repro.observe import (
            MetricsRegistry,
            TimeSeriesSampler,
            attach_engine_source,
            export_level_gauges,
            observe_tree,
        )

        tree = LSMTree(
            LSMConfig(
                buffer_bytes=8 << 10, block_size=512, size_ratio=4,
                layout="leveling", bits_per_key=10.0, cache_bytes=64 << 10, seed=1,
            )
        )
        preload_tree(tree, args.keys, value_size=40)
        registry = MetricsRegistry()
        observe_tree(tree, registry, sampling=0.0)
        export_level_gauges(tree, registry)
        sampler = TimeSeriesSampler(registry)
        attach_engine_source(sampler, tree)
        stop = threading.Event()

        def drive() -> None:
            round_no = 0
            while not stop.is_set():
                spec = uniform_spec(
                    args.keys, OperationMix(put=0.30, get=0.65, scan=0.05),
                    value_size=40, seed=2 + round_no, scan_length=16,
                )
                for op in spec.operations(500):
                    if stop.is_set():
                        return
                    if op.kind == "put":
                        tree.put(op.key, op.value)
                    elif op.kind == "get":
                        tree.get(op.key)
                    elif op.kind == "scan":
                        for _ in tree.scan(op.key, op.end_key):
                            pass
                round_no += 1

        worker = threading.Thread(target=drive, name="stats-live-load", daemon=True)
        worker.start()
        try:
            for _ in range(frames):
                _time.sleep(args.interval)
                sampler.scrape()
                payload = sampler.as_dict()
                _emit_live_frame(_render_history_frame(payload))
        finally:
            stop.set()
            worker.join(timeout=5.0)

    if args.history_out and payload is not None:
        with open(args.history_out, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"time-series history written to {args.history_out}")
    return 0


def stats_command(args: argparse.Namespace) -> int:
    """Per-level stats table and latency percentiles for a demo workload."""
    from repro.observe import export_level_gauges, render_dump, to_json, to_prometheus

    if args.live:
        return stats_live_command(args)
    sampling = args.sampling if args.format == "json" else 0.0
    tree, registry, recorder = _instrumented_run(
        ops=args.ops, keys=args.keys, sampling=sampling
    )
    if args.format == "prometheus":
        export_level_gauges(tree, registry)
        sys.stdout.write(to_prometheus(registry))
    elif args.format == "json":
        print(to_json(registry, tree=tree, recorder=recorder))
    else:
        print(f"repro {__version__} — engine stats ({args.ops} ops, {args.keys} keys)")
        print(render_dump(registry, tree))
    return 0


def trace_command(args: argparse.Namespace) -> int:
    """Record read-path spans and print their stage breakdowns."""
    _, _, recorder = _instrumented_run(
        ops=args.ops,
        keys=args.keys,
        sampling=args.sampling,
        trace_capacity=max(args.limit, 1),
    )
    spans = recorder.spans(args.limit)
    stats = recorder.snapshot()
    print(
        f"repro {__version__} — read-path traces "
        f"(sampling={args.sampling}, sampled={stats['sampled']}, "
        f"dropped={stats['dropped']}, showing {len(spans)})"
    )
    if not spans:
        print("no spans recorded; raise --sampling (0 disables tracing)")
        return 0
    rows = []
    for index, span in enumerate(spans):
        stages = " ".join(f"{name}={duration:.2e}" for name, duration in span.stages)
        rows.append(
            [
                index,
                span.name,
                f"{span.total:.2e}",
                span.attrs.get("found", ""),
                span.attrs.get("blocks_read", ""),
                stages,
            ]
        )
    print(format_table(["#", "op", "total_s", "found", "blocks", "stages"], rows))
    return 0


def serve_command(args: argparse.Namespace) -> int:
    """Serve the framed protocol over TCP; ``--smoke-test`` drives itself.

    The server fronts a concurrent, observed :class:`~repro.service.DBService`
    (group commit, background maintenance, backpressure) and exports every
    engine and ``server_*`` metric through the stats frame.
    """
    import json as _json
    import signal
    import threading

    import repro
    from repro.server import LSMServer, ServerConfig, TenantLoad, run_load

    service = repro.open(service=True, observe=True)
    registry = service.observer.registry
    if args.trace_sampling:
        # Swap in a roomier recorder so smoke runs keep every span of every
        # joined trace (the default ring is sized for steady-state serving).
        from repro.observe import TraceRecorder

        recorder = TraceRecorder(capacity=8192, sampling=args.trace_sampling)
        service.recorder = recorder
        service.tree.tracer = recorder
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        tenant_ops_per_second=args.tenant_rate,
        tenant_burst_ops=args.tenant_burst,
        trace_sampling=args.trace_sampling,
    )
    server = LSMServer(
        service, server_config, registry=registry, close_service=True
    )
    server.start()
    host, port = server.address
    print(f"repro {__version__} — serving on {host}:{port}", flush=True)
    if server_config.tenant_ops_per_second:
        print(
            f"fair-share admission: {server_config.tenant_ops_per_second:g} "
            "ops/s per tenant",
            flush=True,
        )

    if args.smoke_test:
        try:
            from repro.observe import MetricsRegistry, TraceRecorder
            from repro.workloads.spec import OperationMix

            client_registry = MetricsRegistry()
            client_recorder = None
            if args.trace_sampling:
                client_recorder = TraceRecorder(
                    capacity=8192, sampling=args.trace_sampling
                )
            tenants = [
                TenantLoad(
                    tenant=f"smoke{i}",
                    clients=args.clients,
                    ops_per_client=args.ops,
                    mix=OperationMix(put=0.4, get=0.5, scan=0.1),
                    keyspace=500,
                    seed=11 + i,
                    trace_sampling=args.trace_sampling or 0.0,
                )
                for i in range(args.tenant_count)
            ]
            results = run_load(
                host, port, tenants,
                registry=client_registry, trace_recorder=client_recorder,
            )
            snapshot = server.stats_snapshot()
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as fh:
                    _json.dump(snapshot, fh, indent=2, sort_keys=True, default=str)
                print(f"metrics snapshot written to {args.metrics_out}")
            if args.journal_out:
                written = server.journal.write_jsonl(args.journal_out)
                print(f"event journal ({written} events) written to {args.journal_out}")
            if args.history_out:
                server.sampler.scrape()
                with open(args.history_out, "w", encoding="utf-8") as fh:
                    _json.dump(server.sampler.as_dict(), fh, indent=2, sort_keys=True)
                print(f"time-series history written to {args.history_out}")
            total_ops = sum(r.operations for r in results.values())
            protocol_errors = sum(r.protocol_errors for r in results.values())
            remote_errors = sum(r.remote_errors for r in results.values())
            fatal = [e for r in results.values() for e in r.errors]
            for result in results.values():
                p99 = result.latency.get("p99", 0.0)
                print(
                    f"  {result.tenant}: {result.operations} ops "
                    f"({result.ops_per_second:.0f} ops/s, p99 {p99 * 1e3:.2f} ms)"
                )
            print(
                f"smoke test: {total_ops} ops, "
                f"{protocol_errors} protocol errors, "
                f"{remote_errors} remote errors"
            )
            expected = args.tenant_count * args.clients * args.ops
            ok = (
                protocol_errors == 0
                and remote_errors == 0
                and not fatal
                and total_ops == expected
            )
            if client_recorder is not None:
                # A joined trace = one trace id with spans on BOTH sides of
                # the socket; an orphan = a child span whose parent id does
                # not resolve anywhere within its own trace.
                client_spans = client_recorder.spans()
                server_spans = server.recorder.spans()
                joined = {s.trace_id for s in client_spans} & {
                    s.trace_id for s in server_spans
                }
                span_ids_by_trace = {}
                for span in client_spans + server_spans:
                    span_ids_by_trace.setdefault(span.trace_id, set()).add(
                        span.span_id
                    )
                orphans = [
                    span
                    for span in client_spans + server_spans
                    if span.parent_id
                    and span.parent_id
                    not in span_ids_by_trace.get(span.trace_id, set())
                ]
                print(
                    f"tracing: {len(client_spans)} client spans, "
                    f"{len(server_spans)} server+engine spans, "
                    f"{len(joined)} joined traces, {len(orphans)} orphan spans"
                )
                if not joined:
                    print("error: no cross-process trace joined up",
                          file=sys.stderr)
                if orphans:
                    print(
                        f"error: {len(orphans)} orphan spans "
                        f"(first: {orphans[0].as_dict()})",
                        file=sys.stderr,
                    )
                ok = ok and bool(joined) and not orphans
            if not ok:
                for line in fatal[:8]:
                    print(f"  fatal: {line}", file=sys.stderr)
                print(
                    f"error: smoke test failed ({total_ops}/{expected} ops ok)",
                    file=sys.stderr,
                )
            return 0 if ok else 1
        finally:
            server.shutdown()

    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (tests drive this path)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        print("\nshutting down...", flush=True)
    finally:
        server.shutdown()
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    demo_parser = sub.add_parser(
        "demo", help="the 30-second guided tour (the default)"
    )
    demo_parser.add_argument(
        "--profile",
        action="store_true",
        help="run the tour under cProfile and print the hot spots",
    )
    demo_parser.add_argument(
        "--profile-top", type=int, default=20,
        help="profile rows to print (with --profile)",
    )

    stats = sub.add_parser("stats", help="per-level stats and latency percentiles")
    stats.add_argument(
        "--demo",
        action="store_true",
        help="use the built-in demo workload (the default data source)",
    )
    stats.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="export surface (default: the human table)",
    )
    stats.add_argument("--ops", type=int, default=3000, help="operations to drive")
    stats.add_argument("--keys", type=int, default=2000, help="keyspace size")
    stats.add_argument(
        "--sampling",
        type=float,
        default=0.1,
        help="trace sampling fraction for the json export's trace section",
    )
    stats.add_argument(
        "--live",
        action="store_true",
        help="render a redrawing time-series dashboard instead of one table",
    )
    stats.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="live mode: poll a running server's stats_history frames "
        "instead of driving a local demo workload",
    )
    stats.add_argument(
        "--interval", type=float, default=1.0,
        help="live mode: seconds between frames",
    )
    stats.add_argument(
        "--duration", type=float, default=10.0,
        help="live mode: total seconds to run",
    )
    stats.add_argument(
        "--history-out",
        default=None,
        metavar="FILE",
        help="live mode: write the final time-series history as JSON",
    )

    trace = sub.add_parser("trace", help="sampled read-path span breakdowns")
    trace.add_argument(
        "--sampling", type=float, default=1.0, help="span sampling fraction in [0, 1]"
    )
    trace.add_argument("--ops", type=int, default=500, help="operations to drive")
    trace.add_argument("--keys", type=int, default=1000, help="keyspace size")
    trace.add_argument("--limit", type=int, default=10, help="spans to print")

    serve = sub.add_parser(
        "serve", help="run the framed-protocol network server (repro.server)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--max-connections", type=int, default=64, help="concurrent connection cap"
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="fair-share admission: ops/s granted to each tenant (default: off)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="admission burst allowance in ops (default: one second of rate)",
    )
    serve.add_argument(
        "--smoke-test",
        action="store_true",
        help="start, drive a multi-tenant load against yourself, report, exit",
    )
    serve.add_argument(
        "--tenant-count", type=int, default=2, help="smoke test: tenants to drive"
    )
    serve.add_argument(
        "--clients", type=int, default=2, help="smoke test: connections per tenant"
    )
    serve.add_argument(
        "--ops", type=int, default=150, help="smoke test: operations per connection"
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="smoke test: write the server's JSON stats snapshot here",
    )
    serve.add_argument(
        "--trace-sampling",
        type=float,
        default=None,
        metavar="FRACTION",
        help="trace this fraction of requests end to end (client spans in "
        "the smoke test propagate over the wire and join the server's)",
    )
    serve.add_argument(
        "--journal-out",
        default=None,
        metavar="FILE",
        help="smoke test: write the structured event journal as JSONL",
    )
    serve.add_argument(
        "--history-out",
        default=None,
        metavar="FILE",
        help="smoke test: write the time-series history as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        if args.command == "stats":
            return stats_command(args)
        if args.command == "trace":
            return trace_command(args)
        if args.command == "serve":
            return serve_command(args)
        if args.command == "demo" and args.profile:
            from repro.bench.harness import run_profiled

            code, _ = run_profiled(demo, top=args.profile_top)
            return code
        return demo()
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
