"""``python -m repro`` — the CLI: demo tour, stats dumps, and read traces.

Subcommands:

* ``demo`` (the default) — the 30-second guided tour of the design space;
* ``stats`` — run an instrumented workload and print the RocksDB-style
  per-level table plus latency percentiles (``--format table|prometheus|
  json`` selects the export surface);
* ``trace`` — run with read-path tracing enabled and print the recorded
  spans with their per-stage latency breakdowns.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import LSMConfig, LSMTree, __version__
from repro.bench.harness import preload_tree, run_operations
from repro.bench.report import format_table, print_table
from repro.workloads.spec import OperationMix, uniform_spec


def demo() -> int:
    print(f"repro {__version__} — The LSM Design Space and its Read Optimizations")
    print("Building three small trees (leveling / tiering / lazy_leveling)...")
    rows = []
    for layout in ("leveling", "tiering", "lazy_leveling"):
        tree = LSMTree(
            LSMConfig(
                buffer_bytes=4 << 10, block_size=512, size_ratio=4,
                layout=layout, bits_per_key=10.0, cache_bytes=32 << 10, seed=1,
            )
        )
        preload_tree(tree, 2000, value_size=40)
        spec = uniform_spec(2000, OperationMix(put=0.4, get=0.6), value_size=40, seed=2)
        metrics = run_operations(tree, spec.operations(2000))
        rows.append(
            [
                layout,
                tree.num_levels,
                tree.total_runs,
                round(tree.write_amplification, 2),
                round(metrics.reads_per_get, 3),
                round(tree.stats.filter_fpr_observed, 4),
            ]
        )
    print_table(
        "the read/write tradeoff, in one table",
        ["layout", "levels", "runs", "write_amp", "io/get", "filter_fpr"],
        rows,
    )
    # Sanity-check the demo's own story before claiming it.
    by_layout = {row[0]: row for row in rows}
    assert by_layout["tiering"][3] <= by_layout["leveling"][3]
    print(
        "\nNext steps:\n"
        "  python -m repro stats                       # per-level stats + percentiles\n"
        "  python -m repro trace --sampling 1.0        # read-path spans\n"
        "  python examples/quickstart.py               # the API tour\n"
        "  python examples/design_space_tour.py        # 20 design points\n"
        "  pytest benchmarks/ --benchmark-only         # all experiments (E1-E16)\n"
        "  pytest tests/                               # the test suite\n"
        "See README.md, DESIGN.md, and EXPERIMENTS.md for the full map."
    )
    return 0


def _instrumented_run(
    ops: int, keys: int, sampling: float, trace_capacity: int = 256, seed: int = 1
):
    """Build a small observed tree and drive a mixed workload through it.

    Returns (tree, registry, recorder) with the workload already applied.
    """
    from repro.observe import MetricsRegistry, observe_tree

    tree = LSMTree(
        LSMConfig(
            buffer_bytes=8 << 10, block_size=512, size_ratio=4,
            layout="leveling", bits_per_key=10.0, cache_bytes=64 << 10, seed=seed,
        )
    )
    preload_tree(tree, keys, value_size=40)
    registry = MetricsRegistry()
    _, recorder = observe_tree(
        tree, registry, sampling=sampling, trace_capacity=trace_capacity
    )
    spec = uniform_spec(
        keys,
        OperationMix(put=0.30, get=0.65, scan=0.05),
        value_size=40,
        seed=seed + 1,
        scan_length=32,
    )
    for op in spec.operations(ops):
        if op.kind == "put":
            tree.put(op.key, op.value)
        elif op.kind == "get":
            tree.get(op.key)
        elif op.kind == "scan":
            for _ in tree.scan(op.key, op.end_key):
                pass
    return tree, registry, recorder


def stats_command(args: argparse.Namespace) -> int:
    """Per-level stats table and latency percentiles for a demo workload."""
    from repro.observe import export_level_gauges, render_dump, to_json, to_prometheus

    sampling = args.sampling if args.format == "json" else 0.0
    tree, registry, recorder = _instrumented_run(
        ops=args.ops, keys=args.keys, sampling=sampling
    )
    if args.format == "prometheus":
        export_level_gauges(tree, registry)
        sys.stdout.write(to_prometheus(registry))
    elif args.format == "json":
        print(to_json(registry, tree=tree, recorder=recorder))
    else:
        print(f"repro {__version__} — engine stats ({args.ops} ops, {args.keys} keys)")
        print(render_dump(registry, tree))
    return 0


def trace_command(args: argparse.Namespace) -> int:
    """Record read-path spans and print their stage breakdowns."""
    _, _, recorder = _instrumented_run(
        ops=args.ops,
        keys=args.keys,
        sampling=args.sampling,
        trace_capacity=max(args.limit, 1),
    )
    spans = recorder.spans(args.limit)
    stats = recorder.snapshot()
    print(
        f"repro {__version__} — read-path traces "
        f"(sampling={args.sampling}, sampled={stats['sampled']}, "
        f"dropped={stats['dropped']}, showing {len(spans)})"
    )
    if not spans:
        print("no spans recorded; raise --sampling (0 disables tracing)")
        return 0
    rows = []
    for index, span in enumerate(spans):
        stages = " ".join(f"{name}={duration:.2e}" for name, duration in span.stages)
        rows.append(
            [
                index,
                span.name,
                f"{span.total:.2e}",
                span.attrs.get("found", ""),
                span.attrs.get("blocks_read", ""),
                stages,
            ]
        )
    print(format_table(["#", "op", "total_s", "found", "blocks", "stages"], rows))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("demo", help="the 30-second guided tour (the default)")

    stats = sub.add_parser("stats", help="per-level stats and latency percentiles")
    stats.add_argument(
        "--demo",
        action="store_true",
        help="use the built-in demo workload (the default data source)",
    )
    stats.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="export surface (default: the human table)",
    )
    stats.add_argument("--ops", type=int, default=3000, help="operations to drive")
    stats.add_argument("--keys", type=int, default=2000, help="keyspace size")
    stats.add_argument(
        "--sampling",
        type=float,
        default=0.1,
        help="trace sampling fraction for the json export's trace section",
    )

    trace = sub.add_parser("trace", help="sampled read-path span breakdowns")
    trace.add_argument(
        "--sampling", type=float, default=1.0, help="span sampling fraction in [0, 1]"
    )
    trace.add_argument("--ops", type=int, default=500, help="operations to drive")
    trace.add_argument("--keys", type=int, default=1000, help="keyspace size")
    trace.add_argument("--limit", type=int, default=10, help="spans to print")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return stats_command(args)
    if args.command == "trace":
        return trace_command(args)
    return demo()


if __name__ == "__main__":
    sys.exit(main())
