"""repro.open(): the one-call front door to a ready-to-use engine.

The engine has grown layers — core tree, concurrent service, observability,
fault injection — each with its own constructor dance. ``repro.open()``
assembles them coherently in one call and returns a handle that is already
a context manager::

    import repro

    with repro.open(config=repro.LSMConfig(wal_enabled=True)) as db:
        db.put(b"k", b"v")

    # Concurrent service with metrics and fault injection:
    faults = repro.FaultConfig(read_error_prob=0.01, seed=7)
    with repro.open(config=cfg, service=True, observe=True, faults=faults) as db:
        ...

Reopening the same device recovers the durable state (manifest + WAL
replay) instead of starting fresh, so ``open → crash → open`` is the whole
recovery story.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree
from repro.core.manifest import find_manifest
from repro.errors import ConfigError
from repro.faults import FaultConfig, FaultyBlockDevice, ReadGuard
from repro.service import DBService, ServiceConfig
from repro.storage.block_device import BlockDevice


def open(
    config: Optional[LSMConfig] = None,
    *,
    device: Optional[BlockDevice] = None,
    service: Union[bool, ServiceConfig] = False,
    observe: bool = False,
    faults: Optional[FaultConfig] = None,
    sampling: float = 0.0,
    arm_faults: bool = True,
) -> Union[LSMTree, DBService]:
    """Open (or recover) an engine, wiring the requested layers together.

    Args:
        config: tree configuration; defaults to ``LSMConfig(wal_enabled=True)``
            so the handle is durable out of the box.
        device: an existing block device to open against — pass the device
            that survived a (simulated) crash to recover from it. A fresh
            one is created when omitted: a :class:`FaultyBlockDevice` when
            ``faults`` is given, a plain :class:`BlockDevice` otherwise.
        service: ``True`` (or a :class:`ServiceConfig`) fronts the tree with
            a concurrent :class:`DBService` — group commit, background
            maintenance, backpressure. The returned service owns the tree:
            closing it also closes the tree.
        observe: attach a metrics registry (and a trace recorder); read it
            back via the handle's ``observer.registry``. Fault, retry,
            quarantine, and recovery series are included when a read guard
            is present.
        faults: a :class:`FaultConfig` enabling fault injection (fresh
            devices only) and hardened reads: a :class:`ReadGuard` is
            attached to the device — transient read errors are retried with
            capped exponential backoff, checksum failures re-read and then
            quarantine the file, broken filters/indexes degrade to scans.
        sampling: read-path trace sampling fraction in [0, 1] (with
            ``observe=True``).
        arm_faults: arm a freshly created :class:`FaultyBlockDevice` so
            injection is live immediately; pass ``False`` to schedule crash
            points or probabilities first and call ``device.arm()`` yourself.

    Returns:
        A ready :class:`DBService` when ``service`` is requested, else a
        ready :class:`LSMTree`. Both are context managers whose ``close()``
        flushes, seals the WAL, and stops background work.

    Raises:
        ConfigError: on contradictory wiring (e.g. ``faults`` together with
            an existing non-fault device).
    """
    if config is None:
        config = LSMConfig(wal_enabled=True)

    if device is None:
        if faults is not None:
            device = FaultyBlockDevice(
                block_size=config.block_size,
                latency=None,
                faults=faults,
                armed=arm_faults,
            )
        else:
            device = BlockDevice(block_size=config.block_size)
    elif faults is not None and not isinstance(device, FaultyBlockDevice):
        raise ConfigError(
            "faults= requires a fresh device or a FaultyBlockDevice; "
            "got an existing plain BlockDevice"
        )
    if device.block_size != config.block_size:
        raise ConfigError(
            f"device block size {device.block_size} != config.block_size "
            f"{config.block_size}"
        )

    if faults is not None and device.guard is None:
        device.guard = ReadGuard.from_config(faults)

    if config.wal_enabled and find_manifest(device, name=config.name) is not None:
        tree = LSMTree.recover(config, device)
    else:
        tree = LSMTree(config, device=device)

    if not service:
        if observe:
            from repro.observe import observe_tree

            observe_tree(tree, sampling=sampling)
        return tree

    service_config = service if isinstance(service, ServiceConfig) else None
    handle = DBService(tree, config=service_config, close_tree=True)
    if observe:
        observer = handle.attach_observability(sampling=sampling)
        if device.guard is not None:
            device.guard.observer = observer
    return handle
