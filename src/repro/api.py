"""repro.open(): the one-call front door to a ready-to-use engine.

The engine has grown layers — core tree, concurrent service, observability,
fault injection — each with its own constructor dance. ``repro.open()``
assembles them coherently in one call and returns a handle that is already
a context manager::

    import repro

    with repro.open(config=repro.LSMConfig(wal_enabled=True)) as db:
        db.put(b"k", b"v")

    # Concurrent service with metrics and fault injection:
    faults = repro.FaultConfig(read_error_prob=0.01, seed=7)
    with repro.open(config=cfg, service=True, observe=True, faults=faults) as db:
        ...

Reopening the same device recovers the durable state (manifest + WAL
replay) instead of starting fresh, so ``open → crash → open`` is the whole
recovery story.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.common.entry import GetResult
from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree
from repro.core.manifest import find_manifest
from repro.errors import ConfigError
from repro.faults import FaultConfig, FaultyBlockDevice, ReadGuard
from repro.service import DBService, ServiceConfig
from repro.storage.block_device import BlockDevice


@runtime_checkable
class KVStore(Protocol):
    """The one store surface every handle speaks.

    :class:`~repro.core.lsm_tree.LSMTree` (embedded),
    :class:`~repro.service.service.DBService` (concurrent service),
    :class:`~repro.sharding.ShardedStore` (range-sharded), and
    :class:`~repro.server.client.LSMClient` (over the wire) all satisfy
    this protocol, so application code — and :class:`repro.txn.Transaction`
    — runs unchanged against any of them. Structural (PEP 544): no handle
    inherits from this class; ``isinstance(handle, KVStore)`` checks method
    presence at runtime.

    Semantics that the conformance suite
    (``tests/api/test_kvstore_conformance.py``) pins across handles:

    * ``get`` returns a :class:`~repro.common.entry.GetResult` whose
      ``seqno`` fingerprints the newest observed version (0 when absent) —
      the token optimistic transactions validate against;
    * ``multi_get`` returns ``{key: GetResult}`` over the *distinct*
      requested keys, iterating in sorted key order;
    * ``write`` applies a :class:`repro.txn.WriteBatch` (or op-tuple
      iterable) atomically — one WAL frame (per shard, when sharded);
    * ``merge`` enqueues an operand for a registered merge operator;
    * ``put`` with ``ttl=`` stamps an expiry deadline in simulated seconds;
    * ``snapshot`` returns a consistent read view with ``get`` /
      ``multi_get`` / ``scan`` / ``close`` (context-manager capable).
    """

    def get(self, key: bytes) -> GetResult: ...

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> None: ...

    def delete(self, key: bytes) -> None: ...

    def multi_get(self, keys: Sequence[bytes]) -> Dict[bytes, GetResult]: ...

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]: ...

    def write(self, batch) -> None: ...

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> None: ...

    def snapshot(self): ...


def open(
    config: Optional[LSMConfig] = None,
    *,
    device: Optional[BlockDevice] = None,
    service: Union[bool, ServiceConfig] = False,
    server: object = False,
    sharding: Optional[Sequence[bytes]] = None,
    observe: bool = False,
    faults: Optional[FaultConfig] = None,
    sampling: float = 0.0,
    arm_faults: bool = True,
):
    """Open (or recover) an engine, wiring the requested layers together.

    Args:
        config: tree configuration; defaults to ``LSMConfig(wal_enabled=True)``
            so the handle is durable out of the box.
        device: an existing block device to open against — pass the device
            that survived a (simulated) crash to recover from it. A fresh
            one is created when omitted: a :class:`FaultyBlockDevice` when
            ``faults`` is given, a plain :class:`BlockDevice` otherwise.
        service: ``True`` (or a :class:`ServiceConfig`) fronts the tree with
            a concurrent :class:`DBService` — group commit, background
            maintenance, backpressure. The returned service owns the tree:
            closing it also closes the tree.
        server: ``True`` (or a :class:`repro.server.ServerConfig`) starts a
            framed-protocol :class:`~repro.server.LSMServer` over the handle
            and returns the *server* (its ``address`` is ready; connect with
            :class:`~repro.server.LSMClient`). An unsharded backend is
            automatically fronted by a :class:`DBService` (the wire needs a
            thread-safe backend); shutting the server down closes the whole
            stack.
        sharding: split keys for a range-sharded deployment — returns (or
            serves, with ``server=``) a :class:`~repro.sharding.ShardedStore`
            of ``len(sharding) + 1`` trees over one shared device instead of
            a single tree. Mutually exclusive with ``service=`` (shards run
            their own maintenance).
        observe: attach a metrics registry (and a trace recorder); read it
            back via the handle's ``observer.registry``. Fault, retry,
            quarantine, and recovery series are included when a read guard
            is present.
        faults: a :class:`FaultConfig` enabling fault injection (fresh
            devices only) and hardened reads: a :class:`ReadGuard` is
            attached to the device — transient read errors are retried with
            capped exponential backoff, checksum failures re-read and then
            quarantine the file, broken filters/indexes degrade to scans.
        sampling: read-path trace sampling fraction in [0, 1] (with
            ``observe=True``).
        arm_faults: arm a freshly created :class:`FaultyBlockDevice` so
            injection is live immediately; pass ``False`` to schedule crash
            points or probabilities first and call ``device.arm()`` yourself.

    Returns:
        A started :class:`~repro.server.LSMServer` when ``server`` is
        requested; else a :class:`~repro.sharding.ShardedStore` when
        ``sharding`` is given; else a ready :class:`DBService` when
        ``service`` is requested; else a ready :class:`LSMTree`. All are
        context managers whose exit flushes, seals WALs, and stops
        background work.

    Raises:
        ConfigError: on contradictory wiring (e.g. ``faults`` together with
            an existing non-fault device).
    """
    if config is None:
        config = LSMConfig(wal_enabled=True)

    if device is None:
        if faults is not None:
            device = FaultyBlockDevice(
                block_size=config.block_size,
                latency=None,
                faults=faults,
                armed=arm_faults,
            )
        else:
            device = BlockDevice(block_size=config.block_size)
    elif faults is not None and not isinstance(device, FaultyBlockDevice):
        raise ConfigError(
            "faults= requires a fresh device or a FaultyBlockDevice; "
            "got an existing plain BlockDevice"
        )
    if device.block_size != config.block_size:
        raise ConfigError(
            f"device block size {device.block_size} != config.block_size "
            f"{config.block_size}"
        )

    if faults is not None and device.guard is None:
        device.guard = ReadGuard.from_config(faults)

    if sharding is not None:
        if service:
            raise ConfigError(
                "service= and sharding= are mutually exclusive; shards run "
                "their own maintenance (front them with server= if needed)"
            )
        from repro.sharding import ShardedStore

        boundaries = list(sharding)
        shard0 = f"{config.name}-shard0"
        if config.wal_enabled and find_manifest(device, name=shard0) is not None:
            handle = ShardedStore.recover(config, boundaries, device)
        else:
            handle = ShardedStore(config, boundaries, device=device)
        if observe:
            handle.attach_observability(sampling=sampling)
    else:
        if config.wal_enabled and find_manifest(device, name=config.name) is not None:
            tree = LSMTree.recover(config, device)
        else:
            tree = LSMTree(config, device=device)

        if not service and not server:
            if observe:
                from repro.observe import observe_tree

                observe_tree(tree, sampling=sampling)
            return tree

        service_config = service if isinstance(service, ServiceConfig) else None
        handle = DBService(tree, config=service_config, close_tree=True)
        if observe:
            observer = handle.attach_observability(sampling=sampling)
            if device.guard is not None:
                device.guard.observer = observer

    if not server:
        return handle

    from repro.server import LSMServer, ServerConfig

    server_config = server if isinstance(server, ServerConfig) else None
    lsm_server = LSMServer(handle, config=server_config, close_service=True)
    lsm_server.start()
    return lsm_server
