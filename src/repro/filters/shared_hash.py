"""Shared hash calculations across a lookup's filter probes (Zhu et al.,
DAMON 2021).

A point lookup probes one filter per sorted run; computing the key's digest
once and reusing it across every run's filter removes L-1 of the L hash
evaluations (the dominant CPU cost on fast storage). The prober works with
any filter exposing ``may_contain_digest`` and falls back to the ordinary
probe otherwise, so mixed filter stacks still work.
"""

from __future__ import annotations

from typing import Iterable

from repro.filters.hashing import hash64


class SharedHashProber:
    """Probes many filters with one shared digest per key.

    Attributes:
        hash_evaluations: digests this prober computed.
        probes: individual filter probes issued.
        saved_evaluations: evaluations avoided versus per-filter hashing.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self.hash_evaluations = 0
        self.probes = 0
        self.saved_evaluations = 0

    def probe_all(self, key: bytes, filters: Iterable) -> "list[bool]":
        """Probe each filter; returns per-filter maybe/absent answers."""
        filters = list(filters)
        if not filters:
            return []
        digest = hash64(key, self._seed)
        self.hash_evaluations += 1
        self.saved_evaluations += len(filters) - 1
        answers = []
        for filter_ in filters:
            self.probes += 1
            probe = getattr(filter_, "may_contain_digest", None)
            if probe is not None:
                answers.append(probe(digest))
            else:
                answers.append(filter_.may_contain(key))
        return answers

    def any_positive(self, key: bytes, filters: Iterable) -> bool:
        """Convenience: would any filter admit this key?"""
        return any(self.probe_all(key, filters))
