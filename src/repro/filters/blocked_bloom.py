"""Block-based (cache-local) Bloom filter (Putze, Sanders, Singler 2009).

All k bits of a key live inside one 512-bit block (one 64-byte cache line),
so a probe touches exactly one cache line instead of up to k. The price is a
slightly higher false-positive rate at equal space because keys are unevenly
distributed over blocks — both effects are measured by experiment E10.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.filters.base import PointFilter
from repro.filters.bloom import optimal_num_hashes
from repro.filters.hashing import hash64

_BLOCK_BITS = 512  # one 64-byte cache line


class BlockedBloomFilter(PointFilter):
    """Bloom filter whose probes are confined to a single cache-line block.

    Args:
        keys: the run's keys.
        bits_per_key: space budget across the whole filter.
        num_hashes: override k (defaults to the standard optimum).
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 10.0,
        num_hashes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if bits_per_key < 0:
            raise ValueError("bits_per_key must be non-negative")
        keys = list(keys)
        self._n = len(keys)
        self._seed = seed
        if bits_per_key == 0 or not keys:
            self._blocks = None
            self._k = 0
            self._num_blocks = 0
            return
        self._k = num_hashes if num_hashes is not None else optimal_num_hashes(bits_per_key)
        total_bits = max(_BLOCK_BITS, int(bits_per_key * self._n))
        self._num_blocks = (total_bits + _BLOCK_BITS - 1) // _BLOCK_BITS
        self._blocks = bytearray(self._num_blocks * (_BLOCK_BITS // 8))
        for key in keys:
            digest = hash64(key, seed)
            self._insert_digest(digest)

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        if self._blocks is None:
            return True
        digest = hash64(key, self._seed)
        self.stats.hash_evaluations += 1
        self.stats.cache_line_touches += 1  # the whole point of blocking
        block = (digest % self._num_blocks) * (_BLOCK_BITS // 8)
        h1 = (digest >> 20) & 0x1FF
        h2 = ((digest >> 40) & 0x1FF) | 1
        for i in range(self._k):
            pos = (h1 + i * h2) % _BLOCK_BITS
            if not self._blocks[block + (pos >> 3)] & (1 << (pos & 7)):
                self.stats.negatives += 1
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return len(self._blocks) if self._blocks is not None else 0

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def num_hashes(self) -> int:
        return self._k

    # -- internals -----------------------------------------------------------

    def _insert_digest(self, digest: int) -> None:
        assert self._blocks is not None
        block = (digest % self._num_blocks) * (_BLOCK_BITS // 8)
        h1 = (digest >> 20) & 0x1FF
        h2 = ((digest >> 40) & 0x1FF) | 1
        for i in range(self._k):
            pos = (h1 + i * h2) % _BLOCK_BITS
            self._blocks[block + (pos >> 3)] |= 1 << (pos & 7)
