"""The standard Bloom filter, the workhorse point filter of LSM engines.

Bit positions come from Kirsch-Mitzenmacher double hashing (one 64-bit digest
per probe), with the number of hash functions k chosen as ``ln 2 * bits/key``
rounded to the nearest positive integer — the FPR-optimal choice the tutorial
and Monkey assume.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.filters.base import PointFilter
from repro.filters.hashing import hash_pair, hash64


def optimal_num_hashes(bits_per_key: float) -> int:
    """FPR-minimizing hash count for a given space budget."""
    return max(1, round(bits_per_key * math.log(2)))


def theoretical_fpr(bits_per_key: float, num_hashes: Optional[int] = None) -> float:
    """Asymptotic false-positive rate e^{-k ln(2)} at the optimal k.

    With the optimal k this collapses to ``0.6185 ** bits_per_key``, the
    formula the Monkey cost model relies on.
    """
    if bits_per_key <= 0:
        return 1.0
    k = num_hashes if num_hashes is not None else optimal_num_hashes(bits_per_key)
    return (1.0 - math.exp(-k / bits_per_key)) ** k


class _BitArray:
    """A plain bit array over a bytearray."""

    __slots__ = ("data", "nbits")

    def __init__(self, nbits: int) -> None:
        self.nbits = max(8, nbits)
        self.data = bytearray((self.nbits + 7) // 8)

    def set(self, pos: int) -> None:
        self.data[pos >> 3] |= 1 << (pos & 7)

    def test(self, pos: int) -> bool:
        return bool(self.data[pos >> 3] & (1 << (pos & 7)))

    @property
    def size_bytes(self) -> int:
        return len(self.data)


class BloomFilter(PointFilter):
    """Standard Bloom filter over a run's key set.

    Args:
        keys: the run's keys (an iterable; consumed once).
        bits_per_key: space budget; 0 builds a degenerate always-maybe filter
            (useful to represent "no filter at this level" in Monkey sweeps).
        num_hashes: override k; defaults to the optimal ``bits_per_key * ln2``.
        seed: hash seed (vary per run to decorrelate false positives).
        hash_counter: optional shared counter for E10's shared-hashing study.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 10.0,
        num_hashes: Optional[int] = None,
        seed: int = 0,
        hash_counter=None,
    ) -> None:
        super().__init__()
        if bits_per_key < 0:
            raise ValueError("bits_per_key must be non-negative")
        keys = list(keys)
        self._n = len(keys)
        self._seed = seed
        self._hash_counter = hash_counter
        self._bits_per_key = bits_per_key
        if bits_per_key == 0 or not keys:
            self._bits = None
            self._k = 0
            return
        self._k = num_hashes if num_hashes is not None else optimal_num_hashes(bits_per_key)
        if self._k <= 0:
            raise ValueError("num_hashes must be positive")
        self._bits = _BitArray(int(bits_per_key * self._n))
        for key in keys:
            h1, h2 = self._probe_pair(key)
            for i in range(self._k):
                self._bits.set((h1 + i * h2) % self._bits.nbits)

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        if self._bits is None:
            # Degenerate 0-bit filter: never filters anything out.
            self.stats.cache_line_touches += 0
            return True
        h1, h2 = self._probe_pair(key, count=True)
        lines = set()
        for i in range(self._k):
            pos = (h1 + i * h2) % self._bits.nbits
            lines.add(pos >> 9)  # 512 bits per 64-byte cache line
            if not self._bits.test(pos):
                self.stats.negatives += 1
                self.stats.cache_line_touches += len(lines)
                return False
        self.stats.cache_line_touches += len(lines)
        return True

    def may_contain_digest(self, digest: int) -> bool:
        """Probe with a precomputed digest (shared-hashing fast path)."""
        self.stats.probes += 1
        if self._bits is None:
            return True
        h1 = digest & 0xFFFFFFFF
        h2 = (digest >> 32) | 1
        lines = set()
        for i in range(self._k):
            pos = (h1 + i * h2) % self._bits.nbits
            lines.add(pos >> 9)
            if not self._bits.test(pos):
                self.stats.negatives += 1
                self.stats.cache_line_touches += len(lines)
                return False
        self.stats.cache_line_touches += len(lines)
        return True

    @property
    def size_bytes(self) -> int:
        return self._bits.size_bytes if self._bits is not None else 0

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def num_hashes(self) -> int:
        return self._k

    @property
    def expected_fpr(self) -> float:
        """Theoretical FPR for this filter's actual geometry."""
        if self._bits is None:
            return 1.0
        return theoretical_fpr(self._bits.nbits / self._n, self._k)

    # -- internals -----------------------------------------------------------

    def _probe_pair(self, key: bytes, count: bool = False) -> "tuple[int, int]":
        if self._hash_counter is not None:
            digest = self._hash_counter.digest(key, self._seed)
        else:
            digest = hash64(key, self._seed)
        if count:
            self.stats.hash_evaluations += 1
        return digest & 0xFFFFFFFF, (digest >> 32) | 1
