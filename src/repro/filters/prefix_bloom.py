"""Prefix Bloom filter (RocksDB's prefix_extractor + prefix bloom).

Stores fixed-length key prefixes in a Bloom filter. It can answer a range
query only when the whole range shares one prefix of the configured length
(the "prefix seek" pattern); any wider range gets a conservative "maybe".
This is exactly the limitation the tutorial contrasts with SuRF/Rosetta:
great for short prefix-aligned ranges, useless for long ones.
"""

from __future__ import annotations

from typing import Iterable

from repro.filters.base import RangeFilter
from repro.filters.bloom import BloomFilter


class PrefixBloomFilter(RangeFilter):
    """Bloom filter over fixed-length prefixes of the run's keys.

    Args:
        keys: the run's keys.
        prefix_length: bytes of prefix stored; queries are answerable only
            within one prefix group.
        bits_per_key: Bloom budget, charged per distinct prefix.
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        prefix_length: int = 6,
        bits_per_key: float = 10.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if prefix_length <= 0:
            raise ValueError("prefix_length must be positive")
        self._prefix_length = prefix_length
        keys = list(keys)
        self._n = len(keys)
        prefixes = list(dict.fromkeys(key[:prefix_length] for key in keys))
        self._bloom = BloomFilter(prefixes, bits_per_key=bits_per_key, seed=seed)

    def may_intersect(self, lo: bytes, hi: bytes) -> bool:
        self.stats.probes += 1
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        lo_prefix = lo[: self._prefix_length]
        hi_prefix = hi[: self._prefix_length]
        if lo_prefix != hi_prefix or len(lo) < self._prefix_length:
            # The range spans multiple prefix groups (or the bound is shorter
            # than the prefix): the filter cannot rule anything out.
            return True
        answer = self._bloom.may_contain(lo_prefix)
        self.stats.hash_evaluations += 1
        if not answer:
            self.stats.negatives += 1
        return answer

    @property
    def size_bytes(self) -> int:
        return self._bloom.size_bytes

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def prefix_length(self) -> int:
        return self._prefix_length
