"""Partitioned Bloom filters (RocksDB partitioned index/filters).

One monolithic filter per file must be resident in full; partitioning it into
many small filters keyed by key range lets the cache hold only the partitions
actually probed ("more granular in-memory caching", tutorial §II-B.2). The
class tracks which partitions are resident under a byte budget and charges a
simulated load for every cold partition touch, which experiments can read.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List

from repro.filters.base import PointFilter
from repro.filters.bloom import BloomFilter


class PartitionedBloomFilter(PointFilter):
    """A sequence of small range-partitioned Bloom filters.

    Args:
        keys: the run's sorted key list.
        bits_per_key: space budget (applied uniformly to every partition).
        keys_per_partition: partition granularity.
        resident_budget_bytes: None keeps all partitions resident; otherwise
            partitions are paged in LRU-style under the budget and each cold
            touch increments ``partition_loads``.
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 10.0,
        keys_per_partition: int = 1024,
        resident_budget_bytes=None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if keys_per_partition <= 0:
            raise ValueError("keys_per_partition must be positive")
        keys = list(keys)
        for prev, curr in zip(keys, keys[1:]):
            if prev > curr:
                raise ValueError("partitioned filter needs sorted keys")
        self._n = len(keys)
        self._partitions: List[BloomFilter] = []
        self._first_keys: List[bytes] = []
        for start in range(0, len(keys), keys_per_partition):
            chunk = keys[start : start + keys_per_partition]
            self._partitions.append(
                BloomFilter(chunk, bits_per_key=bits_per_key, seed=seed + start)
            )
            self._first_keys.append(chunk[0])
        self._budget = resident_budget_bytes
        self._resident: List[int] = []  # LRU order, most recent last
        self.partition_loads = 0

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        if not self._partitions:
            return True
        idx = bisect.bisect_right(self._first_keys, key) - 1
        if idx < 0:
            self.stats.negatives += 1
            return False
        self._touch(idx)
        partition = self._partitions[idx]
        answer = partition.may_contain(key)
        self.stats.hash_evaluations += 1
        self.stats.cache_line_touches += partition.stats.cache_line_touches
        partition.stats.cache_line_touches = 0
        if not answer:
            self.stats.negatives += 1
        return answer

    @property
    def size_bytes(self) -> int:
        """Total payload across partitions (+ the tiny top-level fence)."""
        payload = sum(partition.size_bytes for partition in self._partitions)
        fence = sum(len(key) for key in self._first_keys)
        return payload + fence

    @property
    def resident_bytes(self) -> int:
        """Bytes of partitions currently held in memory."""
        if self._budget is None:
            return self.size_bytes
        return sum(self._partitions[idx].size_bytes for idx in self._resident)

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    # -- internals -----------------------------------------------------------

    def _touch(self, idx: int) -> None:
        """Model partition residency under the byte budget (LRU)."""
        if self._budget is None:
            return
        if idx in self._resident:
            self._resident.remove(idx)
            self._resident.append(idx)
            return
        self.partition_loads += 1
        self._resident.append(idx)
        while self.resident_bytes > self._budget and len(self._resident) > 1:
            self._resident.pop(0)
