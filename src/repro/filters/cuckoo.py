"""Cuckoo filter (Fan et al., CoNEXT 2014), used by SlimDB and Chucky.

Stores short fingerprints in a two-choice hash table with 4-slot buckets and
partial-key cuckoo hashing: a fingerprint in bucket ``i`` may relocate to
``i XOR hash(fp)``. Compared with a Bloom filter at equal FPR it uses less
space once the FPR is below ~3% and supports deletion — the tradeoff point
experiment E10 reports.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.errors import FilterFullError
from repro.filters.base import PointFilter
from repro.filters.hashing import hash64

_SLOTS_PER_BUCKET = 4
_MAX_KICKS = 500


class CuckooFilter(PointFilter):
    """Cuckoo filter over a run's key set.

    Args:
        keys: keys to insert (construction raises FilterFullError past ~95%
            load; the default sizing leaves 10% headroom).
        fingerprint_bits: fingerprint width; FPR ~= 2 * buckets_per_item /
            2^fingerprint_bits, so 8-12 bits covers the Bloom-competitive range.
        load_factor: target table occupancy used to size the bucket array.
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        fingerprint_bits: int = 12,
        load_factor: float = 0.9,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 1 <= fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be in [1, 32]")
        if not 0 < load_factor < 1:
            raise ValueError("load_factor must be in (0, 1)")
        keys = list(keys)
        self._n = len(keys)
        self._fp_bits = fingerprint_bits
        self._fp_mask = (1 << fingerprint_bits) - 1
        self._seed = seed
        needed_buckets = max(
            1, int(len(keys) / (load_factor * _SLOTS_PER_BUCKET)) + 1
        )
        self._num_buckets = _next_power_of_two(needed_buckets)
        # Small tables have high eviction-failure variance; grow and retry,
        # as production implementations do when sizing their tables.
        for _ in range(4):
            self._buckets: List[List[int]] = [[] for _ in range(self._num_buckets)]
            self._rng = random.Random(seed)
            self.count = 0
            try:
                for key in keys:
                    self.insert(key)
                return
            except FilterFullError:
                self._num_buckets *= 2
        raise FilterFullError(
            f"cuckoo filter could not place {len(keys)} keys even after regrowing"
        )

    def insert(self, key: bytes) -> None:
        """Insert one key; raises FilterFullError when eviction fails."""
        fp, i1 = self._fingerprint_and_bucket(key)
        i2 = self._alt_bucket(i1, fp)
        for bucket_idx in (i1, i2):
            bucket = self._buckets[bucket_idx]
            if len(bucket) < _SLOTS_PER_BUCKET:
                bucket.append(fp)
                self.count += 1
                return
        # Both full: start the cuckoo eviction loop.
        idx = self._rng.choice((i1, i2))
        for _ in range(_MAX_KICKS):
            bucket = self._buckets[idx]
            slot = self._rng.randrange(len(bucket))
            fp, bucket[slot] = bucket[slot], fp
            idx = self._alt_bucket(idx, fp)
            bucket = self._buckets[idx]
            if len(bucket) < _SLOTS_PER_BUCKET:
                bucket.append(fp)
                self.count += 1
                return
        raise FilterFullError(
            f"cuckoo filter full after {_MAX_KICKS} kicks at {self.count} items"
        )

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        self.stats.hash_evaluations += 1
        self.stats.cache_line_touches += 2  # two candidate buckets
        fp, i1 = self._fingerprint_and_bucket(key)
        if fp in self._buckets[i1]:
            return True
        if fp in self._buckets[self._alt_bucket(i1, fp)]:
            return True
        self.stats.negatives += 1
        return False

    def delete(self, key: bytes) -> bool:
        """Remove one copy of the key's fingerprint; True when found.

        Only safe for keys that were actually inserted (the standard cuckoo
        filter contract; deleting a never-inserted key may evict a victim).
        """
        fp, i1 = self._fingerprint_and_bucket(key)
        for bucket_idx in (i1, self._alt_bucket(i1, fp)):
            bucket = self._buckets[bucket_idx]
            if fp in bucket:
                bucket.remove(fp)
                self.count -= 1
                return True
        return False

    @property
    def size_bytes(self) -> int:
        total_bits = self._num_buckets * _SLOTS_PER_BUCKET * self._fp_bits
        return (total_bits + 7) // 8

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def load(self) -> float:
        return self.count / (self._num_buckets * _SLOTS_PER_BUCKET)

    @property
    def expected_fpr(self) -> float:
        """Upper-bound FPR: 2 buckets x 4 slots x 2^-f."""
        return min(1.0, 2.0 * _SLOTS_PER_BUCKET / (1 << self._fp_bits))

    # -- internals -----------------------------------------------------------

    def _fingerprint_and_bucket(self, key: bytes) -> "tuple[int, int]":
        digest = hash64(key, self._seed)
        fp = (digest & self._fp_mask) or 1  # fingerprint 0 is reserved for "empty"
        bucket = (digest >> 32) & (self._num_buckets - 1)
        return fp, bucket

    def _alt_bucket(self, bucket: int, fp: int) -> int:
        return (bucket ^ hash64(fp.to_bytes(4, "little"), self._seed + 1)) & (
            self._num_buckets - 1
        )


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power
