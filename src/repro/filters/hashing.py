"""Deterministic 64-bit hashing for filters.

Uses a from-scratch xxHash-inspired mixer over 8-byte chunks: deterministic
across processes (unlike built-in ``hash``), seedable, and fast enough in pure
Python for simulation-scale key counts. Filters derive all their bit positions
from one 64-bit digest via the Kirsch-Mitzenmacher double-hashing scheme, so a
"hash evaluation" in the experiment counters corresponds to one digest.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
_PRIME1 = 0x9E3779B185EBCA87
_PRIME2 = 0xC2B2AE3D27D4EB4F
_PRIME3 = 0x165667B19E3779F9


def hash64(key: bytes, seed: int = 0) -> int:
    """One 64-bit digest of ``key`` under ``seed``."""
    acc = (seed * _PRIME1 + len(key) * _PRIME2) & MASK64
    for offset in range(0, len(key) - 7, 8):
        lane = int.from_bytes(key[offset : offset + 8], "little")
        acc = (acc ^ (lane * _PRIME2 & MASK64)) & MASK64
        acc = ((acc << 31 | acc >> 33) & MASK64) * _PRIME1 & MASK64
    tail = len(key) & 7
    if tail:
        lane = int.from_bytes(key[-tail:], "little")
        acc = (acc ^ (lane * _PRIME3 & MASK64)) & MASK64
        acc = ((acc << 17 | acc >> 47) & MASK64) * _PRIME2 & MASK64
    acc ^= acc >> 29
    acc = acc * _PRIME3 & MASK64
    acc ^= acc >> 32
    return acc


def hash_pair(key: bytes, seed: int = 0) -> "tuple[int, int]":
    """Split one digest into the (h1, h2) pair for double hashing.

    h2 is forced odd so the probe sequence h1 + i*h2 cycles through any
    power-of-two table without degenerate strides.
    """
    digest = hash64(key, seed)
    h1 = digest & 0xFFFFFFFF
    h2 = (digest >> 32) | 1
    return h1, h2


class HashCounter:
    """Shared hash-evaluation budget counter (experiment E10).

    Filters accept an optional ``HashCounter`` so a :class:`SharedHashProber`
    can demonstrate the saving from computing the digest once per lookup key
    instead of once per (key, filter) pair.
    """

    def __init__(self) -> None:
        self.evaluations = 0

    def digest(self, key: bytes, seed: int = 0) -> int:
        self.evaluations += 1
        return hash64(key, seed)
