"""Point-query and range-query filters (tutorial Module II, §B.2-B.3).

Point filters answer "might this run contain key k?" and let a lookup skip a
run without I/O on a negative. Range filters answer "might this run contain
any key in [lo, hi]?". Every implementation here is built from scratch and
instrumented (hash evaluations, modeled cache-line touches, bit counts) so the
CPU-vs-space tradeoffs the tutorial discusses are measurable.

Point filters: standard Bloom, block-based (cache-local) Bloom, partitioned
Bloom, ElasticBF-style multi-unit, cuckoo, xor. Range filters: prefix Bloom,
SuRF, Rosetta, SNARF.
"""

from repro.filters.base import PointFilter, RangeFilter, FilterStats
from repro.filters.hashing import hash64, hash_pair, HashCounter
from repro.filters.bloom import BloomFilter
from repro.filters.blocked_bloom import BlockedBloomFilter
from repro.filters.partitioned import PartitionedBloomFilter
from repro.filters.elastic import ElasticBloomFilter, ElasticFilterManager
from repro.filters.cuckoo import CuckooFilter
from repro.filters.xor import XorFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.shared_hash import SharedHashProber
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.surf import SuRF
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import Snarf

__all__ = [
    "PointFilter",
    "RangeFilter",
    "FilterStats",
    "hash64",
    "hash_pair",
    "HashCounter",
    "BloomFilter",
    "BlockedBloomFilter",
    "PartitionedBloomFilter",
    "ElasticBloomFilter",
    "ElasticFilterManager",
    "CuckooFilter",
    "XorFilter",
    "QuotientFilter",
    "SharedHashProber",
    "PrefixBloomFilter",
    "SuRF",
    "Rosetta",
    "Snarf",
]
