"""Xor filter (Graf & Lemire 2020) — the static-space tradeoff point.

Serves as this library's stand-in for the Ribbon filter the tutorial cites:
both trade extra construction CPU for ~20-25% less space than a Bloom filter
at equal FPR, and both are static (perfect for immutable runs). The xor filter
stores one f-bit slot per 1.23 keys in three segments; a key's fingerprint
must equal the XOR of its three slots. Construction uses the standard peeling
(hypergraph 2-core) algorithm, retrying with new seeds when peeling stalls.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import FilterError
from repro.filters.base import PointFilter
from repro.filters.hashing import hash64

_SIZE_FACTOR = 1.23
_MAX_SEED_RETRIES = 32


class XorFilter(PointFilter):
    """Static xor filter over a run's key set.

    Args:
        keys: keys to encode (duplicates are deduplicated; peeling requires a
            set).
        fingerprint_bits: slot width f; FPR = 2^-f exactly.
        seed: starting hash seed (construction may advance it when a peeling
            attempt fails, which is expected and rare).
    """

    def __init__(self, keys: Iterable[bytes], fingerprint_bits: int = 8, seed: int = 0) -> None:
        super().__init__()
        if not 1 <= fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be in [1, 32]")
        unique = list(dict.fromkeys(keys))
        self._n = len(unique)
        self._fp_bits = fingerprint_bits
        self._fp_mask = (1 << fingerprint_bits) - 1
        self.construction_passes = 0  # CPU-cost observable for E10

        # The +4 floor keeps tiny key sets peelable (with <3 slots per segment
        # all keys collide on the same hyperedge and no seed can peel them).
        self._segment_len = max(4, int(_SIZE_FACTOR * self._n / 3) + 1)
        self._slots: List[int] = [0] * (3 * self._segment_len)
        if not unique:
            self._seed = seed
            return

        for attempt in range(_MAX_SEED_RETRIES):
            self._seed = seed + attempt
            order = self._peel(unique)
            if order is not None:
                self._assign(order)
                return
        raise FilterError("xor filter construction failed after seed retries")

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        if self._n == 0:
            self.stats.negatives += 1
            return False
        self.stats.hash_evaluations += 1
        self.stats.cache_line_touches += 3  # one slot per segment
        digest = hash64(key, self._seed)
        fp = self._fingerprint(digest)
        h0, h1, h2 = self._positions(digest)
        if (self._slots[h0] ^ self._slots[h1] ^ self._slots[h2]) == fp:
            return True
        self.stats.negatives += 1
        return False

    @property
    def size_bytes(self) -> int:
        return (len(self._slots) * self._fp_bits + 7) // 8

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def expected_fpr(self) -> float:
        return 2.0 ** (-self._fp_bits)

    # -- internals -----------------------------------------------------------

    def _fingerprint(self, digest: int) -> int:
        return (digest ^ (digest >> 37)) & self._fp_mask

    def _positions(self, digest: int) -> "tuple[int, int, int]":
        h0 = (digest & 0x1FFFFF) % self._segment_len
        h1 = self._segment_len + ((digest >> 21) & 0x1FFFFF) % self._segment_len
        h2 = 2 * self._segment_len + ((digest >> 42) & 0x1FFFFF) % self._segment_len
        return h0, h1, h2

    def _peel(self, keys: List[bytes]):
        """Try to peel the 3-uniform hypergraph; returns the assignment order.

        Returns None when a 2-core remains (a different seed is needed).
        """
        self.construction_passes += 1
        slot_count: List[int] = [0] * len(self._slots)
        slot_xor: List[int] = [0] * len(self._slots)  # XOR of incident key ids
        digests = [hash64(key, self._seed) for key in keys]
        positions = [self._positions(d) for d in digests]
        for key_id, pos3 in enumerate(positions):
            for pos in pos3:
                slot_count[pos] += 1
                slot_xor[pos] ^= key_id

        stack = [pos for pos, count in enumerate(slot_count) if count == 1]
        order: List["tuple[int, int]"] = []  # (key_id, forced slot)
        while stack:
            pos = stack.pop()
            if slot_count[pos] != 1:
                continue
            key_id = slot_xor[pos]
            order.append((key_id, pos))
            for other in positions[key_id]:
                slot_count[other] -= 1
                slot_xor[other] ^= key_id
                if slot_count[other] == 1:
                    stack.append(other)
        if len(order) != len(keys):
            return None
        self._digests = digests
        self._key_positions = positions
        return order

    def _assign(self, order) -> None:
        """Back-substitute fingerprints in reverse peeling order."""
        for key_id, forced_slot in reversed(order):
            digest = self._digests[key_id]
            fp = self._fingerprint(digest)
            h0, h1, h2 = self._key_positions[key_id]
            others = (self._slots[h0] ^ self._slots[h1] ^ self._slots[h2]) ^ self._slots[forced_slot]
            self._slots[forced_slot] = fp ^ others
        del self._digests
        del self._key_positions
