"""Rosetta: a Robust Space-Time Optimized Range Filter (Luo et al., SIGMOD'20).

Rosetta keeps one Bloom filter per binary-prefix length, which together form
an implicit segment tree over the key domain. A range query decomposes the
range into dyadic intervals, probes each interval's prefix in the Bloom filter
of its level, and *doubts* every positive by recursing toward the leaf level —
a leaf-level positive is the final "maybe". Short ranges need few dyadic
probes, which is why Rosetta excels exactly where SuRF's truncation hurts
(tutorial §II-B.3).

Keys are interpreted as 64-bit unsigned integers (first 8 bytes, zero-padded):
Rosetta targets fixed-width numeric keys.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.filters.base import RangeFilter
from repro.filters.bloom import BloomFilter

_DOMAIN_BITS = 64


def _key_to_int(key: bytes) -> int:
    return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")


class Rosetta(RangeFilter):
    """Hierarchy-of-Bloom-filters range filter.

    Args:
        keys: the run's keys (interpreted as 64-bit big-endian integers).
        bits_per_key: total memory budget per key across all levels.
        levels: how many of the deepest prefix levels carry Bloom filters
            (prefixes shorter than ``64 - levels`` bits answer "maybe" for
            free). More levels help longer ranges but dilute the per-level
            budget; the Rosetta paper's tuning assigns most memory to the
            bottom levels, mirrored by ``bottom_weight``.
        bottom_weight: fraction of the budget given to the leaf level; the
            remainder is split evenly above it.
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 16.0,
        levels: int = 24,
        bottom_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 1 <= levels <= _DOMAIN_BITS:
            raise ValueError(f"levels must be in [1, {_DOMAIN_BITS}]")
        if not 0 < bottom_weight <= 1:
            raise ValueError("bottom_weight must be in (0, 1]")
        values = sorted({_key_to_int(key) for key in keys})
        self._n = len(values)
        self._levels = levels
        self._min_level = _DOMAIN_BITS - levels + 1  # shallowest filtered level
        self._seed = seed

        budgets = self._level_budgets(bits_per_key, bottom_weight)
        self._blooms: List[Optional[BloomFilter]] = [None] * (_DOMAIN_BITS + 1)
        for level in range(self._min_level, _DOMAIN_BITS + 1):
            prefixes = {value >> (_DOMAIN_BITS - level) for value in values}
            prefix_keys = [prefix.to_bytes(8, "big") for prefix in prefixes]
            # The per-key budget buys nbits = bits_per_key * n total bits; the
            # per-level filter sizes itself on its (deduplicated) prefix count.
            per_prefix_bits = (
                budgets[level] * max(1, self._n) / max(1, len(prefix_keys))
            )
            self._blooms[level] = BloomFilter(
                prefix_keys, bits_per_key=per_prefix_bits, seed=seed + level
            )

    # -- probes ----------------------------------------------------------------

    def may_intersect(self, lo: bytes, hi: bytes) -> bool:
        self.stats.probes += 1
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            self.stats.negatives += 1
            return False
        answer = self._query(_key_to_int(lo), _key_to_int(hi), prefix=0, level=0)
        if not answer:
            self.stats.negatives += 1
        return answer

    # -- metadata ----------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return sum(bloom.size_bytes for bloom in self._blooms if bloom is not None)

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def filtered_levels(self) -> int:
        return self._levels

    # -- internals -----------------------------------------------------------------

    def _level_budgets(self, bits_per_key: float, bottom_weight: float) -> List[float]:
        budgets = [0.0] * (_DOMAIN_BITS + 1)
        if self._levels == 1:
            budgets[_DOMAIN_BITS] = bits_per_key
            return budgets
        budgets[_DOMAIN_BITS] = bits_per_key * bottom_weight
        upper = bits_per_key * (1.0 - bottom_weight) / (self._levels - 1)
        for level in range(self._min_level, _DOMAIN_BITS):
            budgets[level] = upper
        return budgets

    def _probe(self, prefix: int, level: int) -> bool:
        bloom = self._blooms[level]
        if bloom is None:
            return True  # level not maintained: cannot rule out
        self.stats.hash_evaluations += 1
        return bloom.may_contain(prefix.to_bytes(8, "big"))

    def _query(self, lo: int, hi: int, prefix: int, level: int) -> bool:
        """Dyadic-decomposition probe with doubting, as in the Rosetta paper."""
        width = _DOMAIN_BITS - level
        span_lo = prefix << width
        span_hi = span_lo | ((1 << width) - 1)
        if span_hi < lo or span_lo > hi:
            return False
        if level > 0 and not self._probe(prefix, level):
            return False
        if level == _DOMAIN_BITS:
            return True
        # Positive (or unfiltered): doubt by recursing into both children.
        return self._query(lo, hi, prefix << 1, level + 1) or self._query(
            lo, hi, (prefix << 1) | 1, level + 1
        )
