"""ElasticBF-style hotness-aware multi-unit Bloom filters (Li et al., ATC'19).

Each run's filter is split into several independent small *units*; a probe
consults only the units currently enabled (loaded in memory). Cold runs keep
few units enabled — cheap but higher FPR — while hot runs enable more units,
multiplying their false-positive rates together. A manager rebalances the
global unit budget toward the hottest runs, boosting read performance at a
fixed total memory footprint.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.filters.base import PointFilter
from repro.filters.bloom import BloomFilter


class ElasticBloomFilter(PointFilter):
    """A filter made of independent units that can be enabled one by one.

    Args:
        keys: the run's keys.
        bits_per_key: *total* budget across all units.
        units: number of independent units the budget is split into.
        enabled_units: how many units start enabled.
        seed: base hash seed (each unit derives its own).
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 10.0,
        units: int = 4,
        enabled_units: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if units <= 0:
            raise ValueError("units must be positive")
        if not 0 <= enabled_units <= units:
            raise ValueError("enabled_units out of range")
        keys = list(keys)
        self._n = len(keys)
        per_unit = bits_per_key / units
        self._units: List[BloomFilter] = [
            BloomFilter(keys, bits_per_key=per_unit, num_hashes=1, seed=seed + 7919 * i)
            for i in range(units)
        ]
        self.enabled_units = enabled_units
        self.accesses = 0  # hotness signal for the manager

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        self.accesses += 1
        for unit in self._units[: self.enabled_units]:
            self.stats.hash_evaluations += 1
            if not unit.may_contain(key):
                self.stats.negatives += 1
                return False
        return True

    def enable(self, count: int) -> None:
        """Set how many units are resident (clamped to the unit count)."""
        self.enabled_units = max(0, min(count, len(self._units)))

    @property
    def size_bytes(self) -> int:
        """Memory of the *enabled* units only — the elastic part."""
        return sum(unit.size_bytes for unit in self._units[: self.enabled_units])

    @property
    def total_size_bytes(self) -> int:
        """Memory if every unit were resident (the on-disk footprint)."""
        return sum(unit.size_bytes for unit in self._units)

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def num_units(self) -> int:
        return len(self._units)


class ElasticFilterManager:
    """Rebalances a global unit budget across many elastic filters by hotness.

    Args:
        budget_units: total units that may be enabled across all filters.
    """

    def __init__(self, budget_units: int) -> None:
        if budget_units < 0:
            raise ValueError("budget_units must be non-negative")
        self.budget_units = budget_units
        self._filters: List[ElasticBloomFilter] = []

    def register(self, filter_: ElasticBloomFilter) -> None:
        self._filters.append(filter_)
        self.rebalance()

    def unregister(self, filter_: ElasticBloomFilter) -> None:
        if filter_ in self._filters:
            self._filters.remove(filter_)

    def rebalance(self) -> None:
        """Greedily hand units to the hottest filters (ElasticBF's policy).

        Every filter gets at least one unit (when budget allows) so no run is
        ever completely unfiltered; remaining units go to runs in descending
        access-count order.
        """
        if not self._filters:
            return
        for filter_ in self._filters:
            filter_.enable(0)
        remaining = self.budget_units
        by_heat = sorted(self._filters, key=lambda f: f.accesses, reverse=True)
        for filter_ in by_heat:
            if remaining <= 0:
                break
            filter_.enable(1)
            remaining -= 1
        for filter_ in by_heat:
            if remaining <= 0:
                break
            grant = min(remaining, filter_.num_units - filter_.enabled_units)
            filter_.enable(filter_.enabled_units + grant)
            remaining -= grant

    @property
    def enabled_units(self) -> int:
        return sum(filter_.enabled_units for filter_ in self._filters)
