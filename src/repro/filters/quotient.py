"""Quotient filter (Bender et al., VLDB 2012 — "Don't Thrash: How to Cache
Your Hash on Flash").

Stores p-bit fingerprints split into a q-bit *quotient* (the canonical slot)
and an r-bit *remainder* kept in the slot array with three metadata bits
(occupied / continuation / shifted). Its LSM-relevant property, and the
reason the tutorial cites it as a Bloom replacement: fingerprints can be
iterated back out **in sorted order**, so two quotient filters merge into one
with sequential I/O and no rehashing — matching compaction's merge pattern
(the Cascade Filter design).

This implementation targets immutable runs: it is built in one pass from the
sorted fingerprint multiset (the canonical layout emerges directly), which is
also exactly how :meth:`merge` consumes other filters' sorted streams.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.filters.base import PointFilter
from repro.filters.hashing import hash64


class QuotientFilter(PointFilter):
    """Build-once quotient filter over a run's key set.

    Args:
        keys: keys to insert.
        quotient_bits: q — the table has 2^q canonical slots; choose
            ``q >= ceil(log2(n / 0.75))`` (done automatically by default).
        remainder_bits: r — per-probe false-positive rate ~ load * 2^-r.
        seed: hash seed.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        quotient_bits: int = 0,
        remainder_bits: int = 9,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 1 <= remainder_bits <= 32:
            raise ValueError("remainder_bits must be in [1, 32]")
        keys = list(dict.fromkeys(keys))
        self._n = len(keys)
        self._seed = seed
        self._r = remainder_bits
        if quotient_bits <= 0:
            quotient_bits = max(3, (max(1, self._n) * 4 // 3).bit_length())
        self._q = quotient_bits
        fingerprints = sorted(self._fingerprint(key) for key in keys)
        self._layout(fingerprints)

    @classmethod
    def from_fingerprints(
        cls, fingerprints: Sequence[int], quotient_bits: int, remainder_bits: int, seed: int = 0
    ) -> "QuotientFilter":
        """Construct directly from a sorted fingerprint sequence (merge path)."""
        filt = cls.__new__(cls)
        PointFilter.__init__(filt)
        filt._n = len(fingerprints)
        filt._seed = seed
        filt._r = remainder_bits
        filt._q = quotient_bits
        filt._layout(sorted(fingerprints))
        return filt

    @classmethod
    def merge(cls, filters: Sequence["QuotientFilter"]) -> "QuotientFilter":
        """Merge filters by merging their sorted fingerprint streams.

        All inputs must share (q, r, seed) — as the filters of runs being
        compacted do. No key is re-hashed; this is the sequential-merge
        property that makes quotient filters compaction-friendly.
        """
        if not filters:
            raise ValueError("need at least one filter to merge")
        q, r, seed = filters[0]._q, filters[0]._r, filters[0]._seed
        if any(f._q != q or f._r != r or f._seed != seed for f in filters):
            raise ValueError("merge requires identical (q, r, seed) geometry")
        import heapq

        merged = list(heapq.merge(*(f.fingerprints() for f in filters)))
        # Deduplicate (same key in several runs collapses, like compaction).
        deduped = [fp for i, fp in enumerate(merged) if i == 0 or fp != merged[i - 1]]
        grown_q = q
        while (1 << grown_q) * 3 < len(deduped) * 4:
            grown_q += 1  # keep load <= 75%, mirroring Cascade Filter growth
        if grown_q != q:
            deduped.sort()
        return cls.from_fingerprints(deduped, grown_q, r, seed)

    # -- probes ----------------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        self.stats.probes += 1
        self.stats.hash_evaluations += 1
        self.stats.cache_line_touches += 1  # one cluster, usually one line
        fq, fr = divmod(self._fingerprint(key), 1 << self._r)
        if not self._occupied[fq]:
            self.stats.negatives += 1
            return False
        slot = self._run_start(fq)
        while True:
            if self._remainders[slot] == fr:
                return True
            slot += 1
            if slot >= len(self._remainders) or not self._continuation[slot]:
                self.stats.negatives += 1
                return False

    def fingerprints(self) -> Iterator[int]:
        """Yield stored fingerprints in sorted order (the mergeable stream)."""
        for fq in range(1 << self._q):
            if not self._occupied[fq]:
                continue
            slot = self._run_start(fq)
            while True:
                yield (fq << self._r) | self._remainders[slot]
                slot += 1
                if slot >= len(self._remainders) or not self._continuation[slot]:
                    break

    # -- metadata ----------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """(r + 3) bits per slot over 2^q slots (+ overflow slack)."""
        return (len(self._remainders) * (self._r + 3) + 7) // 8

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def load(self) -> float:
        return self._n / (1 << self._q)

    @property
    def expected_fpr(self) -> float:
        return min(1.0, self.load * 2.0 ** (-self._r))

    # -- internals -----------------------------------------------------------------

    def _fingerprint(self, key: bytes) -> int:
        return hash64(key, self._seed) & ((1 << (self._q + self._r)) - 1)

    def _layout(self, fingerprints: List[int]) -> None:
        """Canonical one-pass layout from sorted fingerprints."""
        slots = (1 << self._q) + max(16, self._n // 4)  # non-wrapping slack
        self._remainders = [0] * slots
        self._occupied = [False] * slots
        self._continuation = [False] * slots
        self._shifted = [False] * slots
        free = 0
        index = 0
        while index < len(fingerprints):
            fq = fingerprints[index] >> self._r
            group_end = index
            while (
                group_end < len(fingerprints)
                and fingerprints[group_end] >> self._r == fq
            ):
                group_end += 1
            start = max(fq, free)
            self._occupied[fq] = True
            for offset, position in enumerate(range(start, start + group_end - index)):
                self._remainders[position] = fingerprints[index + offset] & (
                    (1 << self._r) - 1
                )
                self._continuation[position] = offset > 0
                self._shifted[position] = position != fq
            free = start + (group_end - index)
            index = group_end

    def _run_start(self, fq: int) -> int:
        """Slot where quotient ``fq``'s run begins (canonical cluster walk)."""
        cluster = fq
        while self._shifted[cluster]:
            cluster -= 1
        slot = cluster
        quotient = cluster
        while quotient != fq:
            # skip the current run
            slot += 1
            while slot < len(self._continuation) and self._continuation[slot]:
                slot += 1
            # advance to the next occupied quotient
            quotient += 1
            while not self._occupied[quotient]:
                quotient += 1
        return slot
