"""SuRF: the Succinct Range Filter (Zhang et al., SIGMOD 2018).

SuRF stores each key's *shortest distinguishing prefix* in a trie, optionally
extended with a few real or hashed suffix bits. False positives arise only
from truncation, so longer shared-prefix queries get strong filtering and the
filter supports both point and range probes with variable-length keys.

Implementation notes: the trie is materialized as the sorted prefix-free set
of truncated keys; ordered-set operations over that list are semantically
identical to the LOUDS-DS trie traversals of the paper (seek / next / prefix
match). ``size_bytes`` reports the paper's succinct encoding size — 10 bits
per trie node (8-bit label + ~2 bits LOUDS structure) plus the configured
suffix bits per key — rather than the Python object overhead, so space-vs-FPR
comparisons against the other filters are faithful.
"""

from __future__ import annotations

import bisect
import enum
from typing import Iterable, List

from repro.filters.base import RangeFilter
from repro.filters.hashing import hash64

_TERMINATOR = b"\x00"  # appended when one key is a prefix of another


class SuffixMode(enum.Enum):
    """SuRF variants: how many disambiguating bits follow the trie prefix."""

    NONE = "none"  # SuRF-Base
    HASH = "hash"  # SuRF-Hash: h(key) bits; helps point queries only
    REAL = "real"  # SuRF-Real: real key bits; helps point and range queries


class SuRF(RangeFilter):
    """Succinct trie range filter over a run's key set.

    Args:
        keys: the run's keys (any order; deduplicated and sorted internally).
        suffix_mode: SuRF-Base / SuRF-Hash / SuRF-Real.
        suffix_bits: bits stored per key in HASH/REAL modes.
        seed: hash seed for HASH mode.
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        suffix_mode: SuffixMode = SuffixMode.REAL,
        suffix_bits: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if suffix_bits < 0 or suffix_bits > 32:
            raise ValueError("suffix_bits must be in [0, 32]")
        self._mode = suffix_mode
        self._suffix_bits = suffix_bits if suffix_mode is not SuffixMode.NONE else 0
        self._seed = seed

        sorted_keys = sorted(dict.fromkeys(keys))
        self._n = len(sorted_keys)
        self._prefixes: List[bytes] = []
        self._suffixes: List[int] = []
        for i, key in enumerate(sorted_keys):
            lcp = 0
            if i > 0:
                lcp = max(lcp, _lcp_len(key, sorted_keys[i - 1]))
            if i + 1 < self._n:
                lcp = max(lcp, _lcp_len(key, sorted_keys[i + 1]))
            if lcp >= len(key):
                # key is a prefix of a neighbor: keep it whole + terminator
                prefix = key + _TERMINATOR
            else:
                prefix = key[: lcp + 1]
            self._prefixes.append(prefix)
            self._suffixes.append(self._suffix_of(key, len(prefix)))
        self._trie_nodes = _count_trie_nodes(self._prefixes)

    # -- probes ----------------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        """Point probe: does the trie hold a prefix of ``key`` with a matching suffix?"""
        self.stats.probes += 1
        pos = bisect.bisect_right(self._prefixes, key)
        # A key that is a prefix of another key is stored as key+terminator,
        # which sorts just *after* the key itself — check that slot first.
        if pos < len(self._prefixes) and self._prefixes[pos] == key + _TERMINATOR:
            return True
        idx = pos - 1
        if idx < 0:
            self.stats.negatives += 1
            return False
        prefix = self._prefixes[idx]
        stored = prefix[:-1] if prefix.endswith(_TERMINATOR) and prefix[:-1] == key else prefix
        if key[: len(stored)] != stored:
            self.stats.negatives += 1
            return False
        if self._suffix_bits and self._suffixes[idx] != self._suffix_of(key, len(prefix)):
            self.stats.negatives += 1
            return False
        return True

    def may_intersect(self, lo: bytes, hi: bytes) -> bool:
        """Range probe: may any stored key fall in [lo, hi]?

        A stored prefix ``p`` represents the key interval [p, p·0xFF...]; the
        filter answers "maybe" when any such interval intersects [lo, hi].
        REAL suffixes tighten the left boundary check.
        """
        self.stats.probes += 1
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        # A stored prefix that is itself a prefix of lo covers keys >= lo.
        idx = bisect.bisect_right(self._prefixes, lo) - 1
        if idx >= 0:
            prefix = self._prefixes[idx]
            stored = prefix[:-1] if prefix.endswith(_TERMINATOR) else prefix
            if lo[: len(stored)] == stored:
                if self._mode is SuffixMode.REAL and self._suffix_bits:
                    # The real suffix can prove the covered keys sit below lo.
                    if self._suffixes[idx] >= self._suffix_of(lo, len(prefix)):
                        return True
                else:
                    return True
        # Otherwise: the smallest stored prefix >= lo must not exceed hi.
        idx = bisect.bisect_left(self._prefixes, lo)
        if idx < len(self._prefixes) and self._prefixes[idx] <= _pad_like(hi, self._prefixes[idx]):
            return True
        self.stats.negatives += 1
        return False

    # -- metadata ----------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Succinct encoding size: 10 bits/trie node + suffix bits/key."""
        bits = 10 * self._trie_nodes + self._suffix_bits * self._n
        return (bits + 7) // 8

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def trie_nodes(self) -> int:
        return self._trie_nodes

    # -- internals -----------------------------------------------------------------

    def _suffix_of(self, key: bytes, prefix_len: int) -> int:
        if not self._suffix_bits:
            return 0
        if self._mode is SuffixMode.HASH:
            return hash64(key, self._seed) & ((1 << self._suffix_bits) - 1)
        # REAL: the key bits immediately after the stored prefix.
        tail = key[prefix_len : prefix_len + (self._suffix_bits + 7) // 8]
        tail = tail.ljust((self._suffix_bits + 7) // 8, b"\x00")
        return int.from_bytes(tail, "big") >> (8 * len(tail) - self._suffix_bits)


def _lcp_len(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of two byte strings."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def _pad_like(bound: bytes, prefix: bytes) -> bytes:
    """Extend ``bound`` with 0xFF so prefix-length comparisons are inclusive."""
    if len(bound) >= len(prefix):
        return bound
    return bound + b"\xff" * (len(prefix) - len(bound))


def _count_trie_nodes(sorted_prefixes: List[bytes]) -> int:
    """Number of distinct trie nodes = distinct prefixes across stored strings."""
    nodes = 0
    prev = b""
    for prefix in sorted_prefixes:
        nodes += len(prefix) - _lcp_len(prefix, prev)
        prev = prefix
    return nodes
