"""SNARF: a learning-enhanced range filter (Vaidya et al., VLDB 2022).

SNARF models the key set's CDF and maps every key to a position in a sparse
bit array of ``rho`` bits per key; a range query maps its endpoints through
the same model and asks whether any set bit falls between them. Because the
model is monotone and keys are placed by the same model at build time, there
are no false negatives; false positives shrink as rho grows or as the model
tracks the distribution better — the "distribution-aware" advantage the
tutorial highlights for numeric keys.

The sparse bit array is stored as a sorted position array; ``size_bytes``
reports the Elias-Fano compressed size (the paper's encoding), i.e.
``n * (2 + log2(space/n)) / 8`` bytes plus the model knots.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter


def _key_to_int(key: bytes) -> int:
    return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")


class Snarf(RangeFilter):
    """Sparse Numerical Array-Based Range Filter.

    Args:
        keys: the run's keys, interpreted as 64-bit unsigned integers.
        bits_per_key: rho — the bit-array density (the paper explores 2-10).
        model_knots: piecewise-linear CDF resolution (more knots = tighter
            model = fewer false positives, slightly more space).
    """

    def __init__(
        self,
        keys: Iterable[bytes],
        bits_per_key: float = 4.0,
        model_knots: int = 128,
    ) -> None:
        super().__init__()
        if bits_per_key <= 0:
            raise ValueError("bits_per_key must be positive")
        if model_knots < 2:
            raise ValueError("model_knots must be at least 2")
        values = np.array(sorted({_key_to_int(key) for key in keys}), dtype=np.float64)
        self._n = len(values)
        self._rho = bits_per_key
        if self._n == 0:
            self._positions = np.empty(0, dtype=np.int64)
            self._knots_x = np.array([0.0, 1.0])
            self._knots_y = np.array([0.0, 1.0])
            self._space = 1
            return

        # Piecewise-linear CDF over quantile knots (strictly increasing x).
        quantiles = np.linspace(0, self._n - 1, num=min(model_knots, self._n)).astype(int)
        knots_x = values[quantiles]
        knots_y = (quantiles + 1) / self._n
        keep = np.concatenate(([True], np.diff(knots_x) > 0))
        self._knots_x = knots_x[keep]
        self._knots_y = knots_y[keep]
        if len(self._knots_x) == 1:  # all keys equal
            self._knots_x = np.array([self._knots_x[0] - 1.0, self._knots_x[0] + 1.0])
            self._knots_y = np.array([0.0, 1.0])

        self._space = max(1, int(self._rho * self._n))
        positions = np.floor(self._cdf(values) * (self._space - 1)).astype(np.int64)
        self._positions = np.unique(positions)

    # -- probes ----------------------------------------------------------------

    def may_intersect(self, lo: bytes, hi: bytes) -> bool:
        self.stats.probes += 1
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            self.stats.negatives += 1
            return False
        lo_pos = int(math.floor(self._cdf(np.float64(_key_to_int(lo))) * (self._space - 1)))
        hi_pos = int(math.floor(self._cdf(np.float64(_key_to_int(hi))) * (self._space - 1)))
        left = int(np.searchsorted(self._positions, lo_pos, side="left"))
        if left < len(self._positions) and self._positions[left] <= hi_pos:
            return True
        self.stats.negatives += 1
        return False

    # -- metadata ----------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Elias-Fano compressed bit-array size plus the CDF model knots."""
        if self._n == 0:
            return 0
        ef_bits = self._n * (2 + max(0.0, math.log2(self._space / self._n)))
        model_bytes = 16 * len(self._knots_x)  # two float64 per knot
        return int(ef_bits / 8) + model_bytes

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def bit_space(self) -> int:
        return self._space

    # -- internals -----------------------------------------------------------------

    def _cdf(self, values):
        """Monotone piecewise-linear CDF estimate clamped to [0, 1]."""
        return np.clip(np.interp(values, self._knots_x, self._knots_y), 0.0, 1.0)
