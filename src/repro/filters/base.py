"""Filter contracts and shared instrumentation."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class FilterStats:
    """Counters every filter maintains, read by experiment E10.

    Attributes:
        probes: membership queries answered.
        negatives: probes answered "definitely absent".
        hash_evaluations: base hash digests computed (shared hashing lowers
            this without changing probe counts).
        cache_line_touches: modeled 64-byte line accesses per probe — the
            quantity blocked Bloom filters minimize.
    """

    probes: int = 0
    negatives: int = 0
    hash_evaluations: int = 0
    cache_line_touches: int = 0


class PointFilter(abc.ABC):
    """Approximate set membership over the keys of one run.

    Implementations are built once from the full key list (runs are immutable)
    and must never return a false negative.
    """

    def __init__(self) -> None:
        self.stats = FilterStats()

    @abc.abstractmethod
    def may_contain(self, key: bytes) -> bool:
        """True when the key may be present; False means definitely absent."""

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint of the filter payload."""

    @property
    def bits_per_key(self) -> float:
        """Achieved space usage; 0 for an empty filter."""
        return 8.0 * self.size_bytes / max(1, self.key_count)

    @property
    @abc.abstractmethod
    def key_count(self) -> int:
        """Number of keys inserted at construction."""


class RangeFilter(abc.ABC):
    """Approximate *range emptiness*: may any key fall inside [lo, hi]?

    Must never report an occupied range as empty (no false negatives).
    """

    def __init__(self) -> None:
        self.stats = FilterStats()

    @abc.abstractmethod
    def may_intersect(self, lo: bytes, hi: bytes) -> bool:
        """True when some stored key may lie in the closed range [lo, hi]."""

    def may_contain(self, key: bytes) -> bool:
        """Point probe, the degenerate range [key, key]."""
        return self.may_intersect(key, key)

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint of the filter payload."""

    @property
    @abc.abstractmethod
    def key_count(self) -> int:
        """Number of keys inserted at construction."""
