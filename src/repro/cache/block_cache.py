"""The block cache: byte-budgeted, policy-pluggable, invalidation-aware.

Keys are ``(file_id, block_no)`` pairs (plus tagged variants like value-log
blocks). The cache exposes the ``get_or_load`` contract the SSTable read path
uses, and ``invalidate_file`` so compactions can drop blocks of deleted files
— the event the Leaper prefetcher reacts to.

With block compression enabled the cache is **two-tier**, RocksDB-style: the
uncompressed tier holds decoded :class:`~repro.storage.sstable.DataBlock`
objects charged at their *decoded* size, and an optional compressed tier
holds raw on-device frames charged at their on-disk size. A read drains
uncompressed hit → compressed hit (decode, CPU only — no device I/O) →
device read (which feeds both tiers). Each tier has its own byte budget,
eviction policy, and :class:`CacheStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.cache.policies import EvictionPolicy, LRUPolicy, make_policy
from repro.storage.compression import is_compressed_frame


@dataclass
class CacheStats:
    """Hit/miss accounting, readable mid-experiment."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    single_flight_waits: int = 0  # lookups that waited on another thread's load

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(**self.__dict__)

    def delta(self, since: "CacheStats") -> "CacheStats":
        return CacheStats(
            **{name: getattr(self, name) - getattr(since, name) for name in self.__dict__}
        )

    def as_dict(self) -> dict:
        """Flat snapshot including the derived rates (for engine exports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "single_flight_waits": self.single_flight_waits,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class BlockCache:
    """A byte-budgeted object cache for parsed blocks.

    Args:
        capacity_bytes: uncompressed-tier charge budget; 0 disables that
            tier entirely (every lookup is a miss and nothing is retained).
        policy: eviction policy instance or registry name ('lru', 'lfu',
            'clock'); defaults to LRU like RocksDB's default block cache.
        compressed_capacity_bytes: compressed-tier budget; 0 (the default)
            disables the tier, reducing the cache to the classic single-tier
            behavior.
        compressed_policy: eviction policy for the compressed tier (name or
            instance); defaults to LRU. Must be a distinct instance from the
            uncompressed tier's (policies are stateful).
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy=None,
        compressed_capacity_bytes: int = 0,
        compressed_policy=None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if compressed_capacity_bytes < 0:
            raise ValueError("compressed_capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.compressed_capacity_bytes = compressed_capacity_bytes
        self._policy = _resolve_policy(policy)
        self._compressed_policy = _resolve_policy(compressed_policy)
        self._entries: Dict[Hashable, Tuple[object, int]] = {}
        self._compressed: Dict[Hashable, Tuple[object, int]] = {}
        self._loading: Dict[Hashable, threading.Event] = {}
        self._used = 0
        self._compressed_used = 0
        self.stats = CacheStats()
        self.compressed_stats = CacheStats()
        self.access_counts: Dict[Hashable, int] = {}
        # Concurrent readers share the cache (repro.service); policy state
        # (LRU order, clock hands) is not safe to mutate concurrently.
        self._lock = threading.RLock()

    # -- the read-path contract ----------------------------------------------

    def get_or_load(self, key: Hashable, loader: Callable[[], Tuple[object, int]]):
        """Return the cached object or load, insert, and return it.

        ``loader`` returns ``(object, charge_bytes)`` and runs outside the
        lock, so its cost (a device block read) is paid exactly when a real
        engine would pay it. Loads are **single-flight** per key: concurrent
        misses on the same key elect one leader to run ``loader`` while the
        rest wait for it to finish and then re-check the cache, so a hot
        block is read from the device once rather than once per thread. A
        waiter that finds the leader failed (or the value uncacheable)
        becomes the new leader and loads for itself.
        """
        first_touch = True
        while True:
            with self._lock:
                if first_touch:
                    self.access_counts[key] = self.access_counts.get(key, 0) + 1
                    first_touch = False
                cached = self._entries.get(key)
                if cached is not None:
                    self.stats.hits += 1
                    self._policy.on_access(key)
                    return cached[0]
                leader = self._loading.get(key)
                if leader is None:
                    self.stats.misses += 1
                    event = threading.Event()
                    self._loading[key] = event
                    break
                self.stats.single_flight_waits += 1
            leader.wait()
        try:
            value, charge = loader()
        except BaseException:
            with self._lock:
                self._loading.pop(key, None)
            event.set()
            raise
        with self._lock:
            if key not in self._entries:
                self._insert(key, value, charge)
            self._loading.pop(key, None)
        event.set()
        return value

    def get_or_load_block(
        self,
        key: Hashable,
        load_frame: Callable[[], bytes],
        decode: Callable[[bytes], Tuple[object, int]],
    ):
        """The two-tier read: uncompressed hit → compressed hit → device.

        ``load_frame`` reads the raw on-device payload (the expensive step:
        one device block read); ``decode`` turns a payload into
        ``(block, decoded_charge)`` (pure CPU). A compressed-tier hit pays
        only the decode; a full miss pays both and feeds both tiers —
        the raw frame is retained only when it is actually compressed
        (caching a legacy payload raw buys nothing over the decoded block).
        Loads are single-flight per key, sharing the leader/waiter protocol
        of :meth:`get_or_load`.
        """
        first_touch = True
        while True:
            with self._lock:
                if first_touch:
                    self.access_counts[key] = self.access_counts.get(key, 0) + 1
                    first_touch = False
                cached = self._entries.get(key)
                if cached is not None:
                    self.stats.hits += 1
                    self._policy.on_access(key)
                    return cached[0]
                leader = self._loading.get(key)
                if leader is None:
                    self.stats.misses += 1
                    event = threading.Event()
                    self._loading[key] = event
                    break
                self.stats.single_flight_waits += 1
            leader.wait()
        try:
            frame = self.get_compressed(key) if self.compressed_capacity_bytes else None
            from_device = frame is None
            if from_device:
                frame = load_frame()
            value, charge = decode(frame)
        except BaseException:
            with self._lock:
                self._loading.pop(key, None)
            event.set()
            raise
        with self._lock:
            if (
                from_device
                and self.compressed_capacity_bytes
                and is_compressed_frame(frame)
            ):
                self._insert_compressed(key, frame, len(frame))
            if key not in self._entries:
                self._insert(key, value, charge)
            self._loading.pop(key, None)
        event.set()
        return value

    def get(self, key: Hashable):
        """Return the cached object or None, with full hit/miss accounting.

        The coalescing reader uses this instead of :meth:`get_or_load`: on a
        miss it fetches a whole multi-block span from the device and inserts
        each block with :meth:`put`.
        """
        with self._lock:
            cached = self._entries.get(key)
            self.access_counts[key] = self.access_counts.get(key, 0) + 1
            if cached is not None:
                self.stats.hits += 1
                self._policy.on_access(key)
                return cached[0]
            self.stats.misses += 1
            return None

    def contains(self, key: Hashable) -> bool:
        return key in self._entries

    def put(self, key: Hashable, value: object, charge: int) -> None:
        """Insert without a lookup (prefetch path)."""
        with self._lock:
            if key in self._entries:
                return
            self._insert(key, value, charge)

    # -- the compressed tier ---------------------------------------------------

    def get_compressed(self, key: Hashable):
        """Return the cached raw frame or None (compressed-tier lookup).

        A no-op returning None when the tier is disabled, so callers probe
        unconditionally without skewing the tier's hit/miss accounting.
        """
        if self.compressed_capacity_bytes == 0:
            return None
        with self._lock:
            cached = self._compressed.get(key)
            if cached is not None:
                self.compressed_stats.hits += 1
                self._compressed_policy.on_access(key)
                return cached[0]
            self.compressed_stats.misses += 1
            return None

    def put_compressed(self, key: Hashable, payload) -> None:
        """Retain a raw on-device frame in the compressed tier.

        Only actually-compressed frames are kept (the coalescing reader and
        prefetchers call this for every payload they touch); charge is the
        frame's on-disk size.
        """
        if self.compressed_capacity_bytes == 0 or not is_compressed_frame(payload):
            return
        with self._lock:
            if key in self._compressed:
                return
            self._insert_compressed(key, payload, len(payload))

    # -- invalidation ----------------------------------------------------------

    def invalidate_block(self, file_id: int, block_no: int) -> None:
        """Drop any cached copies of one device block.

        Called when a stored block is corrupted in place
        (``BlockDevice.corrupt_block`` / injected bit rot): a warm clean copy
        would otherwise mask the damage and the checksum would never be
        re-verified. Both the plain and value-log-tagged keys are dropped.
        """
        with self._lock:
            for key in ((file_id, block_no), ("vlog", file_id, block_no)):
                if key in self._entries:
                    self._remove(key)
                    self.stats.invalidations += 1
                if key in self._compressed:
                    self._remove_compressed(key)
                    self.compressed_stats.invalidations += 1

    def subscribe_to_device(self, device) -> None:
        """Register this cache's block invalidation on a device's corruption events."""
        device.add_corruption_listener(self.invalidate_block)

    def invalidate_file(self, file_id: int) -> List[Hashable]:
        """Drop every cached block of ``file_id``; returns the dropped keys.

        Compactions call this for each input file they delete. The returned
        keys (with their access counts) are what Leaper uses to decide which
        key ranges were hot.
        """
        with self._lock:
            victims = [key for key in self._entries if _file_of(key) == file_id]
            for key in victims:
                self._remove(key)
                self.stats.invalidations += 1
            for key in [k for k in self._compressed if _file_of(k) == file_id]:
                self._remove_compressed(key)
                self.compressed_stats.invalidations += 1
            return victims

    # -- introspection -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def compressed_used_bytes(self) -> int:
        return self._compressed_used

    def __len__(self) -> int:
        return len(self._entries)

    def hot_keys(self, min_accesses: int) -> List[Hashable]:
        """Currently cached keys with at least ``min_accesses`` touches."""
        return [
            key
            for key in self._entries
            if self.access_counts.get(key, 0) >= min_accesses
        ]

    # -- internals -----------------------------------------------------------------

    def _insert(self, key: Hashable, value: object, charge: int) -> None:
        if self.capacity_bytes == 0 or charge > self.capacity_bytes:
            return  # uncacheable: larger than the whole cache (or caching off)
        while self._used + charge > self.capacity_bytes:
            victim = self._policy.victim()
            if victim is None:
                break
            self._remove(victim)
            self.stats.evictions += 1
        self._entries[key] = (value, charge)
        self._used += charge
        self._policy.on_insert(key)
        self.stats.insertions += 1

    def _remove(self, key: Hashable) -> None:
        value_charge = self._entries.pop(key, None)
        if value_charge is not None:
            self._used -= value_charge[1]
            self._policy.on_remove(key)

    def _insert_compressed(self, key: Hashable, payload, charge: int) -> None:
        if charge > self.compressed_capacity_bytes:
            return  # uncacheable: larger than the whole tier
        while self._compressed_used + charge > self.compressed_capacity_bytes:
            victim = self._compressed_policy.victim()
            if victim is None:
                break
            self._remove_compressed(victim)
            self.compressed_stats.evictions += 1
        self._compressed[key] = (payload, charge)
        self._compressed_used += charge
        self._compressed_policy.on_insert(key)
        self.compressed_stats.insertions += 1

    def _remove_compressed(self, key: Hashable) -> None:
        value_charge = self._compressed.pop(key, None)
        if value_charge is not None:
            self._compressed_used -= value_charge[1]
            self._compressed_policy.on_remove(key)


def _resolve_policy(policy) -> EvictionPolicy:
    if policy is None:
        return LRUPolicy()
    if isinstance(policy, str):
        return make_policy(policy)
    return policy


def _file_of(key: Hashable) -> Optional[int]:
    """Extract the file id from a cache key; supports tagged tuples."""
    if isinstance(key, tuple):
        if len(key) == 2 and isinstance(key[0], int):
            return key[0]
        if len(key) == 3 and key[0] == "vlog":
            return key[1]
    return None
