"""Leaper-style post-compaction prefetching (Yang et al., VLDB 2020).

Compactions rewrite hot data into new files, invalidating the block cache's
hottest entries and causing a burst of cache misses right after the compaction
("cache invalidation" dips). Leaper predicts which *new* blocks correspond to
previously hot *old* blocks and loads them into the cache immediately after
the compaction finishes.

The original uses a learned classifier over access statistics; this
implementation uses the same signal (per-block access counts maintained by the
cache) with a threshold predictor, which preserves the mechanism the E6
experiment measures: hot-range identification -> targeted prefetch -> restored
hit rate, at the cost of a bounded number of prefetch I/Os.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.cache.block_cache import BlockCache
from repro.storage.sstable import SSTable


class LeaperPrefetcher:
    """Re-warms the block cache after a compaction.

    Args:
        cache: the block cache shared with the read path.
        hot_threshold: minimum access count for an old block to be considered
            hot (the stand-in for Leaper's learned hotness classifier).
        max_prefetch_blocks: I/O budget per compaction event.
    """

    def __init__(
        self, cache: BlockCache, hot_threshold: int = 2, max_prefetch_blocks: int = 64
    ) -> None:
        if hot_threshold < 1:
            raise ValueError("hot_threshold must be at least 1")
        if max_prefetch_blocks < 0:
            raise ValueError("max_prefetch_blocks must be non-negative")
        self._cache = cache
        self._hot_threshold = hot_threshold
        self._max_prefetch = max_prefetch_blocks
        self.prefetched_blocks = 0
        self.events = 0

    def on_compaction(
        self, old_tables: Sequence[SSTable], new_tables: Sequence[SSTable]
    ) -> int:
        """React to a compaction: prefetch new blocks covering hot old ranges.

        Must be called *after* the new tables are readable and *before* the
        old files' cache entries are invalidated (it needs their access
        counts), i.e. exactly where the engine's compaction path calls it.

        Returns:
            The number of blocks prefetched.
        """
        self.events += 1
        hot_ranges = self._hot_key_ranges(old_tables)
        if not hot_ranges or not new_tables:
            return 0
        budget = self._max_prefetch
        fetched = 0
        for table in new_tables:
            for block_no in self._covering_blocks(table, hot_ranges):
                if fetched >= budget:
                    return fetched
                key = (table.file_id, block_no)
                if self._cache.contains(key):
                    continue
                # Charge the prefetch read exactly like a demand read.
                block = table._load_block(block_no, None, None)
                self._cache.put(key, block, _block_charge(block))
                self.prefetched_blocks += 1
                fetched += 1
        return fetched

    # -- internals -----------------------------------------------------------

    def _hot_key_ranges(
        self, old_tables: Sequence[SSTable]
    ) -> List[Tuple[bytes, bytes]]:
        """Key ranges of hot cached blocks in the compaction's input files."""
        by_file = {table.file_id: table for table in old_tables}
        ranges: List[Tuple[bytes, bytes]] = []
        for key in self._cache.hot_keys(self._hot_threshold):
            if not (isinstance(key, tuple) and len(key) == 2):
                continue
            file_id, block_no = key
            table = by_file.get(file_id)
            if table is None or not 0 <= block_no < table.num_data_blocks:
                continue
            ranges.append(
                (table._block_first_keys[block_no], table._block_last_keys[block_no])
            )
        return ranges

    @staticmethod
    def _covering_blocks(
        table: SSTable, hot_ranges: Iterable[Tuple[bytes, bytes]]
    ) -> List[int]:
        """Block numbers of ``table`` overlapping any hot range, deduplicated."""
        blocks = set()
        for lo, hi in hot_ranges:
            if not table.overlaps(lo, hi):
                continue
            first = table._first_block_for(lo)
            for block_no in range(first, table.num_data_blocks):
                if table._block_first_keys[block_no] > hi:
                    break
                blocks.add(block_no)
        return sorted(blocks)


def _block_charge(block) -> int:
    """Approximate the cache charge of a parsed block."""
    return sum(entry.approximate_size for entry in block.entries)
