"""Eviction policies for the block cache: LRU, LFU, and CLOCK.

A policy orders cache keys for eviction; the cache owns the payloads and byte
accounting. Policies only see opaque keys, so they are reusable for block
caches, filter-partition caches, or anything else.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Dict, Hashable, Optional


class EvictionPolicy(abc.ABC):
    """Tracks access recency/frequency and nominates eviction victims."""

    @abc.abstractmethod
    def on_insert(self, key: Hashable) -> None:
        """A new key entered the cache."""

    @abc.abstractmethod
    def on_access(self, key: Hashable) -> None:
        """An existing key was read (cache hit)."""

    @abc.abstractmethod
    def on_remove(self, key: Hashable) -> None:
        """A key left the cache (eviction or invalidation)."""

    @abc.abstractmethod
    def victim(self) -> Optional[Hashable]:
        """The key to evict next, or None when empty."""


class LRUPolicy(EvictionPolicy):
    """Least recently used: evict the key touched longest ago."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        return next(iter(self._order), None)


class LFUPolicy(EvictionPolicy):
    """Least frequently used, with FIFO tie-breaking among equal counts."""

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}
        self._arrival: Dict[Hashable, int] = {}
        self._clock = 0

    def on_insert(self, key: Hashable) -> None:
        self._clock += 1
        self._counts[key] = 1
        self._arrival[key] = self._clock

    def on_access(self, key: Hashable) -> None:
        if key in self._counts:
            self._counts[key] += 1

    def on_remove(self, key: Hashable) -> None:
        self._counts.pop(key, None)
        self._arrival.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        if not self._counts:
            return None
        return min(self._counts, key=lambda k: (self._counts[k], self._arrival[k]))


class ClockPolicy(EvictionPolicy):
    """CLOCK (second chance): approximate LRU with one reference bit."""

    def __init__(self) -> None:
        self._ref: "OrderedDict[Hashable, bool]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._ref[key] = False

    def on_access(self, key: Hashable) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_remove(self, key: Hashable) -> None:
        self._ref.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        while self._ref:
            key, referenced = next(iter(self._ref.items()))
            if not referenced:
                return key
            # Second chance: clear the bit and move the hand past it.
            self._ref.move_to_end(key)
            self._ref[key] = False
        return None


_POLICIES = {"lru": LRUPolicy, "lfu": LFUPolicy, "clock": ClockPolicy}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name ('lru', 'lfu', 'clock')."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown eviction policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
