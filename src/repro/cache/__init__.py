"""Block caching and compaction-aware prefetching (tutorial §II-B.1).

The block cache retains hot data blocks in memory under a byte budget with a
pluggable eviction policy. Compactions delete the files backing cached blocks,
silently destroying the hot set ("it is rather frequent that the hot pages
that are compacted are invalidated"); the Leaper-style prefetcher repairs this
by re-fetching the new blocks that cover the invalidated hot key ranges right
after a compaction.
"""

from repro.cache.policies import ClockPolicy, EvictionPolicy, LFUPolicy, LRUPolicy, make_policy
from repro.cache.block_cache import BlockCache, CacheStats
from repro.cache.leaper import LeaperPrefetcher

__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "make_policy",
    "BlockCache",
    "CacheStats",
    "LeaperPrefetcher",
]
