"""Workload generation: key distributions, operation mixes, YCSB presets.

Experiments drive the engine with streams of operations produced here. Key
distributions are deterministic given their seed, so every benchmark run is
reproducible bit-for-bit.
"""

from repro.workloads.distributions import (
    HotspotKeys,
    KeyDistribution,
    LatestKeys,
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
)
from repro.workloads.spec import (
    Operation,
    OperationMix,
    WorkloadSpec,
    generate_operations,
    preload,
    uniform_spec,
)
from repro.workloads.txn import (
    TxnWorkloadResult,
    counter_totals,
    run_bank_transfers,
    run_counter_increments,
    setup_accounts,
    total_balance,
)
from repro.workloads.ycsb import YCSB_PRESETS, ycsb

__all__ = [
    "preload",
    "uniform_spec",
    "KeyDistribution",
    "UniformKeys",
    "ZipfianKeys",
    "SequentialKeys",
    "HotspotKeys",
    "LatestKeys",
    "Operation",
    "OperationMix",
    "WorkloadSpec",
    "generate_operations",
    "YCSB_PRESETS",
    "ycsb",
    "TxnWorkloadResult",
    "setup_accounts",
    "total_balance",
    "run_bank_transfers",
    "run_counter_increments",
    "counter_totals",
]
