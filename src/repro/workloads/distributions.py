"""Key distributions: uniform, zipfian (YCSB-style scrambled), sequential,
hotspot, and latest.

All distributions draw integer keys from ``[0, keyspace)`` and are
deterministic under their seed. The zipfian generator implements the
Gray et al. algorithm used by YCSB, including the scrambling step that
spreads the hot keys across the keyspace (so hot keys do not cluster in one
key range, matching real skewed workloads).
"""

from __future__ import annotations

import abc
import math
import random

from repro.filters.hashing import hash64


class KeyDistribution(abc.ABC):
    """A deterministic stream of integer keys in ``[0, keyspace)``."""

    def __init__(self, keyspace: int, seed: int = 0) -> None:
        if keyspace <= 0:
            raise ValueError("keyspace must be positive")
        self.keyspace = keyspace
        self._rng = random.Random(seed)

    @abc.abstractmethod
    def sample(self) -> int:
        """Draw the next key."""

    def sample_many(self, count: int) -> "list[int]":
        return [self.sample() for _ in range(count)]


class UniformKeys(KeyDistribution):
    """Every key equally likely."""

    def sample(self) -> int:
        return self._rng.randrange(self.keyspace)


class SequentialKeys(KeyDistribution):
    """0, 1, 2, ... wrapping at the keyspace (time-series ingestion)."""

    def __init__(self, keyspace: int, seed: int = 0, start: int = 0) -> None:
        super().__init__(keyspace, seed)
        self._next = start % keyspace

    def sample(self) -> int:
        key = self._next
        self._next = (self._next + 1) % self.keyspace
        return key


class ZipfianKeys(KeyDistribution):
    """YCSB's scrambled zipfian: rank-zipf + hash scrambling.

    Args:
        keyspace: number of distinct keys.
        theta: skew (YCSB default 0.99; 0 degenerates to uniform-ish).
        scrambled: hash the zipf rank so hot keys spread over the keyspace.
    """

    def __init__(
        self, keyspace: int, seed: int = 0, theta: float = 0.99, scrambled: bool = True
    ) -> None:
        super().__init__(keyspace, seed)
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self._theta = theta
        self._scrambled = scrambled
        self._zetan = self._zeta(keyspace, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / keyspace) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    def sample(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self._theta:
            rank = 1
        else:
            rank = int(self.keyspace * (self._eta * u - self._eta + 1) ** self._alpha)
        rank = min(rank, self.keyspace - 1)
        if not self._scrambled:
            return rank
        return hash64(rank.to_bytes(8, "little"), seed=1) % self.keyspace

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact up to a cutoff, then the integral approximation; keeps
        # construction O(1)-ish for large keyspaces.
        cutoff = min(n, 10_000)
        total = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            total += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) / (1 - theta)
        return total


class HotspotKeys(KeyDistribution):
    """A fraction of operations hit a small hot region of the keyspace."""

    def __init__(
        self,
        keyspace: int,
        seed: int = 0,
        hot_fraction: float = 0.2,
        hot_weight: float = 0.8,
    ) -> None:
        super().__init__(keyspace, seed)
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_weight <= 1:
            raise ValueError("hot_weight must be in [0, 1]")
        self._hot_size = max(1, int(keyspace * hot_fraction))
        self._hot_weight = hot_weight

    def sample(self) -> int:
        if self._rng.random() < self._hot_weight:
            return self._rng.randrange(self._hot_size)
        if self._hot_size == self.keyspace:
            return self._rng.randrange(self.keyspace)
        return self._hot_size + self._rng.randrange(self.keyspace - self._hot_size)


class LatestKeys(KeyDistribution):
    """Skewed toward recently inserted keys (YCSB-D's 'latest').

    Call :meth:`advance` whenever an insert happens so the head moves.
    """

    def __init__(self, keyspace: int, seed: int = 0, theta: float = 0.99) -> None:
        super().__init__(keyspace, seed)
        self._head = 1
        self._zipf = ZipfianKeys(keyspace, seed=seed, theta=theta, scrambled=False)

    def advance(self, head: int) -> None:
        """Record that keys up to ``head`` now exist."""
        self._head = max(1, min(head, self.keyspace))

    def sample(self) -> int:
        offset = self._zipf.sample() % self._head
        return self._head - 1 - offset


def describe(distribution: KeyDistribution) -> str:
    """One-line label for experiment output."""
    name = type(distribution).__name__
    extra = ""
    if isinstance(distribution, ZipfianKeys):
        extra = f"(theta={distribution._theta})"
    return f"{name}{extra}[{distribution.keyspace}]"


def estimated_distinct(keyspace: int, samples: int) -> int:
    """Expected distinct keys when sampling uniformly with replacement."""
    return round(keyspace * (1 - math.exp(-samples / keyspace)))
