"""YCSB core-workload presets (the mixes every LSM paper reports against).

=======  =============================  ====================
Preset   Mix                            Key distribution
=======  =============================  ====================
A        50% get / 50% put              zipfian
B        95% get / 5% put               zipfian
C        100% get                       zipfian
D        95% get / 5% put               latest
E        95% scan / 5% put              zipfian
F        50% get / 50% put (RMW-ish)    zipfian
=======  =============================  ====================
"""

from __future__ import annotations

from repro.workloads.distributions import LatestKeys, ZipfianKeys
from repro.workloads.spec import OperationMix, WorkloadSpec

YCSB_PRESETS = {
    "A": OperationMix(put=0.5, get=0.5),
    "B": OperationMix(put=0.05, get=0.95),
    "C": OperationMix(get=1.0),
    "D": OperationMix(put=0.05, get=0.95),
    "E": OperationMix(put=0.05, scan=0.95),
    "F": OperationMix(put=0.5, get=0.5),
}


def ycsb(
    preset: str,
    keyspace: int,
    value_size: int = 64,
    scan_length: int = 100,
    seed: int = 0,
    theta: float = 0.99,
) -> WorkloadSpec:
    """Build a WorkloadSpec for one YCSB core preset.

    Raises:
        KeyError: for unknown preset letters.
    """
    preset = preset.upper()
    try:
        mix = YCSB_PRESETS[preset]
    except KeyError:
        raise KeyError(
            f"unknown YCSB preset {preset!r}; expected one of {sorted(YCSB_PRESETS)}"
        ) from None
    if preset == "D":
        read_keys = LatestKeys(keyspace, seed=seed + 1, theta=theta)
    else:
        read_keys = ZipfianKeys(keyspace, seed=seed + 1, theta=theta)
    return WorkloadSpec(
        mix=mix,
        read_keys=read_keys,
        write_keys=ZipfianKeys(keyspace, seed=seed + 2, theta=theta),
        value_size=value_size,
        scan_length=scan_length,
        seed=seed,
    )
