"""Operation mixes and workload specifications."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.common.encoding import encode_uint_key
from repro.workloads.distributions import KeyDistribution, LatestKeys, UniformKeys


@dataclass(frozen=True)
class Operation:
    """One operation for the engine: kind, key(s), optional value.

    kind is one of 'put', 'get', 'scan', 'delete'. Scans carry ``end_key``.
    """

    kind: str
    key: bytes
    value: bytes = b""
    end_key: Optional[bytes] = None


@dataclass(frozen=True)
class OperationMix:
    """Fractions of each operation kind; must sum to 1."""

    put: float = 0.0
    get: float = 0.0
    scan: float = 0.0
    delete: float = 0.0

    def __post_init__(self) -> None:
        total = self.put + self.get + self.scan + self.delete
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1, got {total}")
        for name in ("put", "get", "scan", "delete"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} fraction must be non-negative")


@dataclass
class WorkloadSpec:
    """A complete workload description.

    Attributes:
        mix: operation fractions.
        read_keys: distribution for get/scan keys.
        write_keys: distribution for put/delete keys (defaults to read_keys).
        value_size: payload bytes per put.
        scan_length: keys spanned by each scan's range.
        seed: RNG seed for the operation-kind sequence.
    """

    mix: OperationMix
    read_keys: KeyDistribution
    write_keys: Optional[KeyDistribution] = None
    value_size: int = 64
    scan_length: int = 100
    seed: int = 0
    _inserts: int = field(default=0, repr=False)

    def operations(self, count: int) -> Iterator[Operation]:
        """Generate ``count`` operations."""
        return generate_operations(self, count)


def generate_operations(spec: WorkloadSpec, count: int) -> Iterator[Operation]:
    """Yield operations drawn from the spec's mix and distributions."""
    rng = random.Random(spec.seed)
    write_keys = spec.write_keys or spec.read_keys
    mix = spec.mix
    thresholds = (
        mix.put,
        mix.put + mix.get,
        mix.put + mix.get + mix.scan,
    )
    for i in range(count):
        draw = rng.random()
        if draw < thresholds[0]:
            raw = write_keys.sample()
            spec._inserts += 1
            if isinstance(spec.read_keys, LatestKeys):
                spec.read_keys.advance(spec._inserts)
            yield Operation(
                kind="put",
                key=encode_uint_key(raw),
                value=_value_for(raw, i, spec.value_size),
            )
        elif draw < thresholds[1]:
            yield Operation(kind="get", key=encode_uint_key(spec.read_keys.sample()))
        elif draw < thresholds[2]:
            start = spec.read_keys.sample()
            end = min(start + spec.scan_length - 1, spec.read_keys.keyspace - 1)
            yield Operation(
                kind="scan",
                key=encode_uint_key(start),
                end_key=encode_uint_key(end),
            )
        else:
            yield Operation(kind="delete", key=encode_uint_key(write_keys.sample()))


def _value_for(key: int, op_index: int, size: int) -> bytes:
    """A deterministic, verifiable value payload."""
    stamp = b"k%dv%d:" % (key, op_index)
    if len(stamp) >= size:
        return stamp[:size]
    return stamp + b"x" * (size - len(stamp))


def preload(tree, keyspace: int, value_size: int = 64, seed: int = 0) -> None:
    """Insert every key of the keyspace once, in random order.

    The standard experiment setup: load, then measure the query phase.
    """
    order = list(range(keyspace))
    random.Random(seed).shuffle(order)
    for key in order:
        tree.put(encode_uint_key(key), _value_for(key, 0, value_size))
    tree.flush()


def uniform_spec(
    keyspace: int,
    mix: OperationMix,
    value_size: int = 64,
    scan_length: int = 100,
    seed: int = 0,
) -> WorkloadSpec:
    """Convenience: a spec with independent uniform read/write keys."""
    return WorkloadSpec(
        mix=mix,
        read_keys=UniformKeys(keyspace, seed=seed + 1),
        write_keys=UniformKeys(keyspace, seed=seed + 2),
        value_size=value_size,
        scan_length=scan_length,
        seed=seed,
    )
