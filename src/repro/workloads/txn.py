"""Transactional workloads: contended counters and bank transfers.

Two canonical OCC stress shapes, used by the E25 benchmark and the
transactional crash harness:

* **counter** — N worker threads all ``merge`` a small hot set of counter
  keys. Merges never conflict (operands are commutative and fold at read
  or compaction time), so this measures the *write path cost* of typed
  MERGE entries under the group-commit batcher.
* **bank transfer** — N worker threads move amounts between accounts
  inside optimistic :class:`repro.txn.Transaction` commits. Transfers on
  overlapping accounts race: losers observe :class:`ConflictError`,
  retry, and the workload reports the conflict rate and the latency tax
  of retries. The invariant — total balance is conserved — doubles as a
  correctness check on every run.

Both workloads are deterministic per worker given its seed, and both run
against any :class:`repro.api.KVStore` handle (tree, service, shards, or
wire client), which is the point of the shared protocol.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConflictError
from repro.txn import Transaction


@dataclass
class TxnWorkloadResult:
    """Per-worker tallies, mergeable across threads."""

    operations: int = 0  # committed workload units (transfers / merges)
    commits: int = 0
    conflicts: int = 0  # ConflictError observations (before retry)
    aborts: int = 0  # transfers abandoned after exhausting retries
    wall_seconds: float = 0.0
    commit_latencies: List[float] = field(default_factory=list)

    def merge(self, other: "TxnWorkloadResult") -> None:
        self.operations += other.operations
        self.commits += other.commits
        self.conflicts += other.conflicts
        self.aborts += other.aborts
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.commit_latencies.extend(other.commit_latencies)

    @property
    def conflict_rate(self) -> float:
        """Conflicts per commit *attempt* (commits + conflicts)."""
        attempts = self.commits + self.conflicts
        return self.conflicts / attempts if attempts else 0.0

    def latency_percentile(self, q: float) -> float:
        """Commit latency at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not self.commit_latencies:
            return 0.0
        ordered = sorted(self.commit_latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def _account_key(index: int) -> bytes:
    return b"acct:%08d" % index


def setup_accounts(store, accounts: int, initial_balance: int = 1_000) -> int:
    """Fund ``accounts`` accounts atomically; returns the invariant total."""
    ops = [
        ("put", _account_key(i), b"%d" % initial_balance, None)
        for i in range(accounts)
    ]
    store.write(ops)
    return accounts * initial_balance


def total_balance(store, accounts: int) -> int:
    """Sum every account's balance (the conservation invariant)."""
    results = store.multi_get([_account_key(i) for i in range(accounts)])
    return sum(int(r.value) for r in results.values() if r.found)


def run_bank_transfers(
    store,
    accounts: int = 64,
    workers: int = 4,
    transfers_per_worker: int = 200,
    max_retries: int = 8,
    seed: int = 0,
    think_time_s: float = 0.0,
    client_factory=None,
) -> TxnWorkloadResult:
    """Drive concurrent bank transfers through optimistic transactions.

    Args:
        store: any KVStore handle; workers share it unless
            ``client_factory`` is given.
        client_factory: zero-arg callable returning a fresh per-worker
            handle (required for :class:`~repro.server.LSMClient`, whose
            socket is one-request-at-a-time). Handles it creates are
            closed by this function.
        max_retries: per-transfer retry budget; a transfer still losing
            after this many conflicts counts as an abort.
        think_time_s: sleep between the reads and the writes of each
            attempt — models application work inside the transaction and
            widens the window in which a concurrent commit invalidates
            the read set (the knob that drives the conflict rate).

    Returns:
        The merged :class:`TxnWorkloadResult`; ``operations`` counts
        completed transfers.
    """
    import random

    results = [TxnWorkloadResult() for _ in range(workers)]
    barrier = threading.Barrier(workers)

    def worker(wid: int) -> None:
        rng = random.Random(seed * 7919 + wid)
        handle = client_factory() if client_factory is not None else store
        out = results[wid]
        try:
            barrier.wait()
            wall0 = time.perf_counter()
            for _ in range(transfers_per_worker):
                i = rng.randrange(accounts)
                j = rng.randrange(accounts - 1)
                if j >= i:
                    j += 1
                amount = rng.randint(1, 10)
                committed = False
                for _attempt in range(max_retries + 1):
                    commit0 = time.perf_counter()
                    txn = Transaction(handle)
                    try:
                        src = txn.get(_account_key(i))
                        dst = txn.get(_account_key(j))
                        if think_time_s > 0.0:
                            time.sleep(think_time_s)
                        txn.put(_account_key(i), b"%d" % (int(src.value) - amount))
                        txn.put(_account_key(j), b"%d" % (int(dst.value) + amount))
                        txn.commit()
                    except ConflictError:
                        out.conflicts += 1
                        continue
                    finally:
                        txn.abort()  # releases the snapshot; no-op once done
                    out.commits += 1
                    out.commit_latencies.append(time.perf_counter() - commit0)
                    committed = True
                    break
                if committed:
                    out.operations += 1
                else:
                    out.aborts += 1
            out.wall_seconds = time.perf_counter() - wall0
        finally:
            if client_factory is not None:
                handle.close()

    threads = [
        threading.Thread(target=worker, args=(wid,), name=f"bank-{wid}")
        for wid in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    merged = TxnWorkloadResult()
    for r in results:
        merged.merge(r)
    return merged


def run_counter_increments(
    store,
    counters: int = 8,
    workers: int = 4,
    increments_per_worker: int = 500,
    seed: int = 0,
    client_factory=None,
) -> TxnWorkloadResult:
    """Hammer a hot set of counter keys with ``merge`` increments.

    Merges are conflict-free by construction; the interesting numbers are
    throughput (wall_seconds) and that the folded totals come out exact —
    which the caller should verify with :func:`expected_counter_total`.
    """
    import random

    results = [TxnWorkloadResult() for _ in range(workers)]
    barrier = threading.Barrier(workers)

    def worker(wid: int) -> None:
        rng = random.Random(seed * 104729 + wid)
        handle = client_factory() if client_factory is not None else store
        out = results[wid]
        try:
            barrier.wait()
            wall0 = time.perf_counter()
            for _ in range(increments_per_worker):
                key = b"ctr:%04d" % rng.randrange(counters)
                handle.merge(key, b"1", operator="counter")
                out.operations += 1
                out.commits += 1
            out.wall_seconds = time.perf_counter() - wall0
        finally:
            if client_factory is not None:
                handle.close()

    threads = [
        threading.Thread(target=worker, args=(wid,), name=f"counter-{wid}")
        for wid in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    merged = TxnWorkloadResult()
    for r in results:
        merged.merge(r)
    return merged


def counter_totals(store, counters: int) -> dict:
    """Read back every counter's folded value as ``{key: int}``."""
    out = {}
    for i in range(counters):
        key = b"ctr:%04d" % i
        got = store.get(key)
        out[key] = int(got.value) if got.found else 0
    return out
