"""Group commit: coalescing concurrent writes into one WAL append.

The leader/follower protocol every production engine uses (RocksDB's write
group, LevelDB's writer queue): the first writer to find the queue empty
becomes the *leader*, waits briefly for followers to pile on, then applies
the whole batch — one WAL frame, one memtable pass — and wakes everyone.
Each caller blocks until its own write is durable, so acknowledgement
semantics are unchanged; only the I/O is amortized.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional

from repro.errors import ClosedError


class WriteOp(NamedTuple):
    """One queued write.

    ``kind`` is 'put', 'put_ttl', 'delete', 'merge', 'write' (an atomic
    multi-op batch), or 'txn' (an optimistic-transaction commit). ``meta``
    carries the kind-specific extra: the TTL in simulated seconds
    (put_ttl), the operator name (merge), the op list (write), or the
    ``(read_set, ops)`` pair (txn). Value is unused for deletes and
    composite kinds.
    """

    kind: str
    key: bytes
    value: Optional[bytes]
    meta: Optional[object] = None


class _Request:
    __slots__ = ("op", "done", "error")

    def __init__(self, op: WriteOp) -> None:
        self.op = op
        self.done = threading.Event()
        self.error: Optional[BaseException] = None


@dataclass
class BatcherStats:
    """Group-commit accounting (read after a workload for batch shapes)."""

    batches: int = 0
    records: int = 0
    max_batch: int = 0

    @property
    def avg_batch(self) -> float:
        return self.records / self.batches if self.batches else 0.0


class WriteBatcher:
    """A group-commit queue in front of a single apply function.

    Args:
        apply_fn: called on the leader's thread with the drained batch
            (a list of :class:`WriteOp`); must be thread-safe — two leaders
            can exist back-to-back (a follower that arrives after a drain
            becomes the next leader while the previous batch still commits).
            May return a list of per-op exceptions (None = that op
            succeeded), parallel to the batch: an op-level failure — e.g. a
            transaction losing validation — is delivered to *its* submitter
            only, while the rest of the group commits normally. Returning
            None means the whole batch succeeded; raising fails the whole
            batch.
        max_batch: drain at most this many requests per commit.
        max_wait_s: leader linger time waiting for followers.
    """

    def __init__(
        self,
        apply_fn: Callable[[List[WriteOp]], None],
        max_batch: int = 64,
        max_wait_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._apply = apply_fn
        self._max_batch = max_batch
        self._max_wait = max_wait_s
        self._queue: List[_Request] = []
        self._cond = threading.Condition()
        self._closed = False
        self.stats = BatcherStats()

    @property
    def queue_depth(self) -> int:
        """Writes currently parked in the commit queue (a gauge, racy read)."""
        return len(self._queue)

    def submit(self, op: WriteOp) -> None:
        """Enqueue one write and block until it is committed.

        The calling thread either becomes the batch leader (applies the
        whole group) or a follower (sleeps until its leader signals).
        Exceptions raised by ``apply_fn`` propagate to every member of the
        failed batch.
        """
        request = _Request(op)
        with self._cond:
            if self._closed:
                raise ClosedError("submit on a closed WriteBatcher")
            self._queue.append(request)
            leader = len(self._queue) == 1
            if not leader and len(self._queue) >= self._max_batch:
                self._cond.notify_all()  # wake the leader early: batch is full
        if leader:
            self._lead()
        else:
            request.done.wait()
        if request.error is not None:
            raise request.error

    def _lead(self) -> None:
        """Linger for followers, drain the queue, commit the batch."""
        with self._cond:
            deadline = time.monotonic() + self._max_wait
            while len(self._queue) < self._max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch, self._queue = self._queue, []
        try:
            errors = self._apply([request.op for request in batch])
            self.stats.batches += 1
            self.stats.records += len(batch)
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
        except BaseException as exc:  # propagate to every follower, then re-raise
            for request in batch:
                request.error = exc
                request.done.set()
            raise
        if errors is not None:
            for request, error in zip(batch, errors):
                request.error = error
        for request in batch:
            request.done.set()

    def close(self) -> None:
        """Reject new submissions; in-flight batches complete normally."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
