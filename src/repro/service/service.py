"""DBService: the thread-safe, production-shaped front door to an LSMTree.

The seed engine runs every flush and compaction inline on the caller's
write path. This facade restores the shape production stores actually have:

* writes go through a :class:`WriteBatcher` (group commit — one WAL frame
  per batch, leader/follower acknowledgement);
* a full memtable is *sealed* on the write path and built/installed by a
  :class:`CompactionScheduler` worker in the background;
* a :class:`BackpressureController` delays or blocks writers when
  maintenance falls behind (RocksDB-style slowdown/stop);
* reads probe memory under the tree mutex, then walk a pinned
  :class:`~repro.core.version.Version` outside it, so background installs
  never invalidate an in-flight lookup.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.entry import GetResult
from repro.core.config import LSMConfig
from repro.core.lsm_tree import LSMTree, Snapshot
from repro.errors import ClosedError, ConflictError
from repro.observe.tracing import TraceContext
from repro.service.backpressure import BackpressureController
from repro.service.batcher import WriteBatcher, WriteOp
from repro.service.config import ServiceConfig
from repro.service.scheduler import CompactionScheduler, RateLimiter


class DBService:
    """A concurrent database service over one :class:`LSMTree`.

    Args:
        tree: the tree to serve, or an :class:`LSMConfig` to build one from.
        config: service knobs; defaults are reasonable for tests/demos.
        scheduler: an externally owned scheduler to share (the sharded
            deployment passes one scheduler for all shards); the service
            creates and owns a private one when omitted.

    The service is itself thread-safe: any number of client threads may
    call :meth:`put`, :meth:`delete`, :meth:`get`, and :meth:`scan`
    concurrently. :meth:`close` drains queues (every acknowledged write
    reaches storage or the WAL) and stops owned background workers.
    """

    def __init__(
        self,
        tree,
        config: Optional[ServiceConfig] = None,
        scheduler: Optional[CompactionScheduler] = None,
        close_tree: bool = False,
    ) -> None:
        if isinstance(tree, LSMConfig):
            warnings.warn(
                "constructing DBService from an LSMConfig is deprecated; "
                "use repro.open(config, service=True)",
                DeprecationWarning,
                stacklevel=2,
            )
            tree = LSMTree(tree)
        self.tree: LSMTree = tree
        self.config = config or ServiceConfig()
        self._close_tree = close_tree
        self._owns_scheduler = scheduler is None
        if scheduler is None:
            limiter = None
            if self.config.compaction_rate_bytes is not None:
                limiter = RateLimiter(
                    self.config.compaction_rate_bytes,
                    self.config.compaction_burst_bytes,
                )
            scheduler = CompactionScheduler(
                num_workers=self.config.num_workers,
                rate_limiter=limiter,
                subcompaction_workers=self.config.subcompaction_workers,
            )
        self.scheduler = scheduler
        self.scheduler.register(tree)
        self.backpressure = BackpressureController(tree, self.config, scheduler)
        self._batcher = WriteBatcher(
            self._apply_batch,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_batch_wait_s,
        )
        self._closed = False
        self._started_monotonic = time.monotonic()
        # Observability (repro.observe), wired by attach_observability().
        self.observer = None
        self.recorder = None
        self._write_wall = None
        self._get_wall = None
        self._batch_hist = None

    # -- observability ------------------------------------------------------

    def attach_observability(
        self,
        registry=None,
        sampling: float = 0.0,
        trace_capacity: int = 256,
    ):
        """Thread a metrics registry (and sampled tracing) through the stack.

        Instruments the tree (engine latency histograms, per-level probe
        accounting, sampled read-path spans), the service's client-observed
        wall-clock latencies (queueing + group commit included), the
        group-commit batch-size distribution, the backpressure stall
        histogram, and live gauges for the write queue depth, flush
        backlog, and pending background jobs.

        Args:
            registry: report into this registry (a fresh one by default).
            sampling: read-path trace sampling fraction in [0, 1].
            trace_capacity: spans retained in the trace ring buffer.

        Returns:
            The attached :class:`~repro.observe.EngineObserver` (its
            ``registry`` and the service's ``recorder`` hold everything).
        """
        from repro.observe import EngineObserver, MetricsRegistry, TraceRecorder

        if registry is None:
            registry = MetricsRegistry()
        self.observer = EngineObserver(registry)
        self.recorder = TraceRecorder(capacity=trace_capacity, sampling=sampling)
        self.tree.observer = self.observer
        self.tree.tracer = self.recorder
        # One shared journal: engine flush/compaction events (via the
        # observer) interleave with backpressure stall/transition events.
        self.backpressure.journal = self.observer.journal
        self._write_wall = registry.histogram(
            "service_write_wall_seconds",
            "client-observed write latency (stall + queueing + group commit)",
            min_value=1e-6,
        )
        self._get_wall = registry.histogram(
            "service_get_wall_seconds",
            "client-observed point-lookup latency",
            min_value=1e-6,
        )
        self._batch_hist = registry.histogram(
            "service_batch_records",
            "records per group commit",
            growth=1.5,
            min_value=0.5,
        )
        self.backpressure.stall_histogram = registry.histogram(
            "service_stall_wall_seconds",
            "per-write stall delay (slowdown sleeps and hard stops)",
            min_value=1e-6,
        )
        registry.gauge(
            "service_write_queue_depth", "writes parked in the commit queue"
        ).set_function(lambda: self._batcher.queue_depth)
        registry.gauge(
            "service_flush_backlog", "sealed memtables + level-1 runs"
        ).set_function(self.tree.flush_backlog)
        registry.gauge(
            "service_pending_jobs", "queued + in-flight background jobs"
        ).set_function(lambda: self.scheduler.pending_jobs)
        registry.gauge(
            "service_uptime_seconds", "seconds since the service started"
        ).set_function(lambda: self.uptime_seconds)
        registry.gauge(
            "engine_uptime_seconds", "seconds since the engine instance opened"
        ).set_function(lambda: self.tree.uptime_seconds)
        return self.observer

    # -- writes -------------------------------------------------------------

    def put(self, key: bytes, value: bytes, ttl: Optional[float] = None) -> None:
        """Durable insert/update; blocks until its group commit lands.

        ``ttl`` (simulated seconds) stamps the entry with an expiry
        deadline; see :meth:`LSMTree.put`.
        """
        if ttl is None:
            self._submit(WriteOp("put", key, value))
        else:
            self._submit(WriteOp("put_ttl", key, value, float(ttl)))

    def merge(self, key: bytes, operand: bytes, operator: str = "counter") -> None:
        """Durable merge-operand write (see :meth:`LSMTree.merge`)."""
        self.tree.merge_operator(operator)  # fail fast before queueing
        self._submit(WriteOp("merge", key, operand, operator))

    def delete(self, key: bytes) -> None:
        """Durable delete; blocks until its group commit lands."""
        self._submit(WriteOp("delete", key, None))

    def write(self, batch) -> None:
        """Apply a :class:`repro.txn.WriteBatch` (or op-tuple iterable)
        atomically: its records are contiguous within one group commit —
        one WAL frame holds them all, so a crash keeps or drops the batch
        whole."""
        ops = list(batch)
        if not ops:
            return
        self._submit(WriteOp("write", b"", None, ops))

    def commit_transaction(self, read_set: Dict[bytes, int], ops) -> int:
        """Validate and apply an optimistic transaction through group commit.

        Validation runs in the commit leader under the tree mutex — the
        transaction's read-set fingerprint is compared against current
        seqnos (and against keys written earlier in the same group), then
        its writes land in the group's single WAL frame.

        Raises:
            ConflictError: validation failed; nothing was applied.
        """
        ops = list(ops)
        self._submit(WriteOp("txn", b"", None, (dict(read_set), ops)))
        return len(ops)

    def register_merge_operator(self, operator) -> None:
        """Register a user merge operator on the underlying tree."""
        self.tree.register_merge_operator(operator)

    def merge_operator(self, name: str):
        """Look up a registered merge operator by name."""
        return self.tree.merge_operator(name)

    def _submit(self, op: WriteOp) -> None:
        self._check_open()
        histogram = self._write_wall
        recorder = self.recorder
        span = recorder.maybe_start("service:write") if recorder is not None else None
        if histogram is not None or span is not None:
            wall0 = time.perf_counter()
        self.backpressure.gate()
        if span is not None:
            gated = time.perf_counter()
            span.add_stage("backpressure_gate", gated - wall0)
        self._batcher.submit(op)
        if span is not None:
            span.add_stage("group_commit", time.perf_counter() - gated)
            recorder.finish(span, op=op.kind, key_bytes=len(op.key))
        if histogram is not None:
            histogram.record(time.perf_counter() - wall0)

    def _apply_batch(self, ops) -> Optional[List[Optional[BaseException]]]:
        """Commit one drained group: validate transactions, apply the rest.

        Returns per-op errors (transactions that lose validation get a
        :class:`ConflictError`; everything else in the group still
        commits). Expansion and validation happen together under the tree
        mutex so no write can slip between a transaction's validation and
        its apply.
        """
        tree = self.tree
        errors: List[Optional[BaseException]] = [None] * len(ops)
        with tree.mutex:
            flat: List[tuple] = []
            written: set = set()
            for index, op in enumerate(ops):
                if op.kind == "txn":
                    read_set, txn_ops = op.meta
                    try:
                        # A key written earlier in this very group is as
                        # much a conflict as one already committed.
                        overlap = [k for k in read_set if k in written]
                        if overlap:
                            tree.stats.txn_conflicts += 1
                            raise ConflictError(
                                f"key {overlap[0]!r} written by an earlier "
                                f"commit in the same group"
                            )
                        tree._validate_read_set(read_set)
                    except ConflictError as exc:
                        errors[index] = exc
                        continue
                    flat.extend(txn_ops)
                    written.update(txn_op[1] for txn_op in txn_ops)
                    tree.stats.txn_commits += 1
                elif op.kind == "write":
                    flat.extend(op.meta)
                    written.update(batch_op[1] for batch_op in op.meta)
                elif op.meta is not None:
                    flat.append((op.kind, op.key, op.value, op.meta))
                    written.add(op.key)
                else:
                    flat.append((op.kind, op.key, op.value))
                    written.add(op.key)
            if flat:
                tree.write_batch(flat)
        tree.stats.batches_committed += 1
        tree.stats.batched_records += len(ops)
        if self._batch_hist is not None:
            self._batch_hist.record(len(ops))
        return errors

    # -- reads --------------------------------------------------------------

    def get(self, key: bytes) -> GetResult:
        """Point lookup against a pinned snapshot of the tree.

        Memory (active + sealed memtables) is probed under the tree mutex;
        on a miss the storage runs are pinned and probed outside it, so a
        concurrent compaction can retire — but never delete — the files
        this lookup is reading.
        """
        self._check_open()
        histogram = self._get_wall
        recorder = self.recorder
        span = recorder.maybe_start("service:get") if recorder is not None else None
        if histogram is not None or span is not None:
            wall0 = time.perf_counter()
        tree = self.tree
        with tree.mutex:
            tree.stats.gets += 1
            entry, operands = tree._probe_memory_chain(key)
            version = tree.pin_runs() if entry is None else None
        if span is not None:
            probed = time.perf_counter()
            span.add_stage("memtable_probe", probed - wall0)
        if version is not None:
            # Memory did not terminate the chain: continue on the pinned
            # runs. Memory operands are strictly newer than anything on
            # storage, so extending keeps newest-first order.
            try:
                entry, run_operands = version.get_chain(key, cache=tree.cache)
                operands.extend(run_operands)
            finally:
                version.close()
            if span is not None:
                walked = time.perf_counter()
                span.add_stage("storage_probe", walked - probed)
        result = GetResult()
        if operands:
            result.seqno = operands[0].seqno
        elif entry is not None:
            result.seqno = entry.seqno
        if entry is not None or operands:
            value = tree._resolve_chain(
                entry, operands, tree.device.stats.simulated_time
            )
            if value is not None:
                result.found = True
                result.value = value
        if span is not None:
            recorder.finish(span, op="get", found=result.found,
                            from_memtable=version is None)
        if histogram is not None:
            histogram.record(time.perf_counter() - wall0)
        return result

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Range scan over a pinned snapshot (see :meth:`LSMTree.scan`)."""
        self._check_open()
        return self.tree.scan(start, end)

    def multi_get(self, keys) -> "dict[bytes, GetResult]":
        """Batched point lookups in sorted key order.

        When this call is the outermost span (no active trace context), the
        sampling decision is made once here and inherited by every per-key
        lookup — a batch is fully traced under one ``service:multi_get``
        parent or not traced at all, never half-traced.
        """
        recorder = self.recorder
        if recorder is None or recorder.active() is not None:
            return {key: self.get(key) for key in sorted(set(keys))}
        span = recorder.maybe_start("service:multi_get")
        ctx = span.context() if span is not None else TraceContext("", sampled=False)
        token = recorder.activate(ctx)
        try:
            return {key: self.get(key) for key in sorted(set(keys))}
        finally:
            recorder.deactivate(token)
            if span is not None:
                recorder.finish(span, op="multi_get", keys=len(set(keys)))

    def snapshot(self) -> Snapshot:
        """A consistent read view of the tree (see :meth:`LSMTree.snapshot`).

        Writes queued but not yet group-committed are invisible — the
        snapshot captures committed state only.
        """
        self._check_open()
        return self.tree.snapshot()

    # -- maintenance --------------------------------------------------------

    def flush(self, wait: bool = True) -> None:
        """Seal the memtable and schedule its flush; optionally wait."""
        self._check_open()
        if self.tree.seal_memtable() is not None:
            self.scheduler.request_flush(self.tree)
        if wait:
            self.scheduler.drain()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for all queued background work to finish."""
        return self.scheduler.drain(timeout)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drain and stop: commit queued writes, flush, stop owned workers.

        By default the underlying tree stays open (inspectable, and still
        usable single-threaded with inline maintenance restored); a service
        constructed with ``close_tree=True`` (the ``repro.open()`` path)
        also closes the tree — flushing, sealing its WAL, and persisting.
        """
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self.tree.seal_memtable() is not None:
            self.scheduler.request_flush(self.tree)
        self.scheduler.drain()
        if self._owns_scheduler:
            self.scheduler.close()
        self.tree.set_maintenance_callback(None)
        if self._close_tree:
            self.tree.close()

    def __enter__(self) -> "DBService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ------------------------------------------------------

    @property
    def stats(self):
        return self.tree.stats

    @property
    def uptime_seconds(self) -> float:
        """Wall-clock seconds since this service instance was constructed."""
        return time.monotonic() - self._started_monotonic

    def ping(self) -> dict:
        """Cheap liveness probe: no I/O, safe to call from health checks.

        Reports whether the service is open, how long the service and the
        underlying engine have been up (a recovered tree restarts its
        clock — it is a new instance), and the background-job backlog.
        """
        return {
            "ok": not self._closed,
            "service_uptime_seconds": self.uptime_seconds,
            "engine_uptime_seconds": self.tree.uptime_seconds,
            "pending_jobs": self.scheduler.pending_jobs,
            "write_queue_depth": self._batcher.queue_depth,
        }

    def metrics_snapshot(self) -> dict:
        """The engine's metrics snapshot plus service-level uptime/backlog."""
        snapshot = self.tree.metrics_snapshot()
        snapshot["service_uptime_seconds"] = self.uptime_seconds
        snapshot["pending_jobs"] = self.scheduler.pending_jobs
        snapshot["write_queue_depth"] = self._batcher.queue_depth
        return snapshot

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("operation on a closed DBService")
