"""Service-layer knobs: group commit, scheduling, rate limiting, stalls.

These are deliberately separate from :class:`repro.core.config.LSMConfig`:
the tree's knobs shape *what* the structure looks like; the service's knobs
shape *when and on which thread* reorganization runs — the dimension the
compaction design-space work isolates as first-class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config_base import kwonly_dataclass
from repro.errors import ConfigError


@kwonly_dataclass
@dataclass
class ServiceConfig:
    """Every knob of the concurrent front-end, with RocksDB-shaped defaults.

    Keyword-only: positional construction still works for one release behind
    a DeprecationWarning.

    Attributes:
        max_batch: group-commit batch cap; a commit leader drains at most
            this many queued writes into one WAL frame.
        max_batch_wait_s: how long a leader waits for followers before
            committing a short batch (the group-commit latency/amortization
            tradeoff).
        num_workers: background worker threads shared by flush and
            compaction jobs.
        compaction_rate_bytes: token-bucket refill rate (bytes/second of
            compaction input) limiting background I/O so foreground reads
            are not starved; None disables rate limiting.
        compaction_burst_bytes: bucket capacity; defaults to one second of
            refill when None.
        l0_slowdown_runs: flush backlog (sealed memtables + level-1 runs)
            at which writers are delayed (soft stall).
        l0_stop_runs: backlog at which writers block until compaction
            catches up (hard stall).
        debt_slowdown: compaction-debt gauge (see
            ``LSMTree.compaction_debt``) for a soft stall; None disables.
        debt_stop: debt gauge for a hard stall; None disables.
        slowdown_delay_s: sleep injected per soft-stalled write.
        stop_timeout_s: safety valve — the longest a hard stall may block
            one write before letting it through (prevents deadlock if
            maintenance cannot make progress).
        subcompaction_workers: when set, the scheduler owns one shared
            thread pool of this size that serves every registered tree's
            key-range subcompactions (see
            :class:`repro.parallel.ParallelConfig`); None lets each tree
            lazily create a private pool on first parallel merge.
    """

    max_batch: int = 64
    max_batch_wait_s: float = 0.002
    num_workers: int = 2
    compaction_rate_bytes: Optional[float] = None
    compaction_burst_bytes: Optional[float] = None
    l0_slowdown_runs: int = 8
    l0_stop_runs: int = 16
    debt_slowdown: Optional[float] = None
    debt_stop: Optional[float] = None
    slowdown_delay_s: float = 0.001
    stop_timeout_s: float = 10.0
    subcompaction_workers: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be at least 1")
        if self.max_batch_wait_s < 0:
            raise ConfigError("max_batch_wait_s must be non-negative")
        if self.num_workers < 1:
            raise ConfigError("num_workers must be at least 1")
        if self.compaction_rate_bytes is not None and self.compaction_rate_bytes <= 0:
            raise ConfigError("compaction_rate_bytes must be positive")
        if self.l0_slowdown_runs < 1:
            raise ConfigError("l0_slowdown_runs must be at least 1")
        if self.l0_stop_runs < self.l0_slowdown_runs:
            raise ConfigError("l0_stop_runs must be >= l0_slowdown_runs")
        if self.debt_slowdown is not None and self.debt_slowdown < 0:
            raise ConfigError("debt_slowdown must be non-negative")
        if self.debt_stop is not None:
            if self.debt_stop < 0:
                raise ConfigError("debt_stop must be non-negative")
            if self.debt_slowdown is not None and self.debt_stop < self.debt_slowdown:
                raise ConfigError("debt_stop must be >= debt_slowdown")
        if self.slowdown_delay_s < 0:
            raise ConfigError("slowdown_delay_s must be non-negative")
        if self.stop_timeout_s <= 0:
            raise ConfigError("stop_timeout_s must be positive")
        if self.subcompaction_workers is not None and self.subcompaction_workers < 1:
            raise ConfigError("subcompaction_workers must be at least 1")
