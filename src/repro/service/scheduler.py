"""Background maintenance: a worker pool over a prioritized job queue.

Production LSM engines never reorganize on the caller's thread: flushes and
compactions are jobs a background pool executes, prioritized so durability
debt drains first (flushes), then write-amplification debt at the top of the
tree (level-1 run pileups block every lookup), then deep saturation. A
token bucket on compaction input bytes keeps background merges from
saturating the device under foreground reads.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import itertools
import threading
import time
from typing import Callable, List, Optional

from repro.core.lsm_tree import LSMTree

_PRIORITY_FLUSH = 0
_PRIORITY_COMPACT = 1


class RateLimiter:
    """A token bucket metering background compaction I/O bytes.

    Deficit-style (RocksDB's GenericRateLimiter spirit): a request is
    admitted whenever the bucket is positive and may drive it negative, so
    arbitrarily large merges pass eventually while the *average* rate holds.

    Args:
        bytes_per_second: steady-state refill rate.
        burst_bytes: bucket capacity (defaults to one second of refill).
        clock, sleep: injectable for deterministic tests.
    """

    def __init__(
        self,
        bytes_per_second: float,
        burst_bytes: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if bytes_per_second <= 0:
            raise ValueError("bytes_per_second must be positive")
        self._rate = float(bytes_per_second)
        self._burst = float(burst_bytes if burst_bytes is not None else bytes_per_second)
        if self._burst <= 0:
            raise ValueError("burst_bytes must be positive")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self._burst  # start full: the first merge is never delayed
        self._stamp = clock()
        self._lock = threading.Lock()
        self.waits = 0
        self.total_wait_s = 0.0
        self.bytes_admitted = 0

    def _refill(self, now: float) -> None:
        self._tokens = min(self._burst, self._tokens + (now - self._stamp) * self._rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        """Current bucket level (may be negative after a large admit)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def request(self, nbytes: int) -> float:
        """Block until the bucket is positive, then charge ``nbytes``.

        Returns:
            Seconds spent waiting (0.0 when admitted immediately).
        """
        waited = 0.0
        while True:
            with self._lock:
                now = self._clock()
                self._refill(now)
                if self._tokens > 0:
                    self._tokens -= nbytes
                    self.bytes_admitted += nbytes
                    if waited > 0:
                        self.waits += 1
                        self.total_wait_s += waited
                    return waited
                # Sleep exactly long enough for the bucket to turn positive.
                pause = (-self._tokens) / self._rate + 1e-6
            self._sleep(pause)
            waited += pause


class CompactionScheduler:
    """A shared worker pool draining flush and compaction jobs.

    One scheduler may serve many trees (the sharded deployment): each
    registered tree's maintenance callback enqueues jobs here instead of
    flushing inline. Per tree, at most one flush job and one compaction job
    run at a time (flush installs must follow seal order; compaction plans
    must not race for the same input runs) — parallelism comes from the
    number of trees and from flush/compaction overlap.

    Args:
        num_workers: worker thread count.
        rate_limiter: optional shared token bucket charged with each
            compaction's input bytes before the merge runs.
        subcompaction_workers: when set, one shared worker pool of this
            size serves every registered tree's key-range subcompactions
            (instead of each tree lazily creating its own); the scheduler
            owns and shuts down the pool. Only meaningful for trees with
            ``config.parallel`` set.
    """

    def __init__(
        self,
        num_workers: int = 2,
        rate_limiter: Optional[RateLimiter] = None,
        subcompaction_workers: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if subcompaction_workers is not None and subcompaction_workers < 1:
            raise ValueError("subcompaction_workers must be at least 1")
        self.rate_limiter = rate_limiter
        self.subcompaction_pool = (
            concurrent.futures.ThreadPoolExecutor(
                max_workers=subcompaction_workers, thread_name_prefix="subcompact"
            )
            if subcompaction_workers is not None
            else None
        )
        self._cv = threading.Condition()
        self._queue: List[tuple] = []  # heap of (priority, seq, kind, tree)
        self._seq = itertools.count()
        self._queued = set()  # (kind, id(tree)) pairs present in the heap
        self._inflight = set()  # (kind, id(tree)) pairs being executed
        self._listeners: List[Callable[[], None]] = []
        self._running = True
        self.job_failures = 0  # jobs that raised; workers survive them
        self.last_job_error: Optional[BaseException] = None
        self._workers = [
            threading.Thread(target=self._worker, name=f"lsm-maint-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- registration -------------------------------------------------------

    def register(self, tree: LSMTree) -> None:
        """Take over a tree's maintenance: seals trigger background flushes."""
        tree.set_maintenance_callback(lambda: self.request_flush(tree))
        if self.subcompaction_pool is not None:
            tree.set_subcompaction_executor(self.subcompaction_pool)

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` after every completed job (backpressure hook)."""
        self._listeners.append(callback)

    # -- job submission -----------------------------------------------------

    def request_flush(self, tree: LSMTree) -> None:
        self._enqueue(_PRIORITY_FLUSH, "flush", tree)

    def request_compaction(self, tree: LSMTree) -> None:
        self._enqueue(_PRIORITY_COMPACT, "compact", tree)

    def _enqueue(self, priority: int, kind: str, tree: LSMTree) -> None:
        with self._cv:
            if not self._running:
                return
            token = (kind, id(tree))
            if token in self._queued:
                return  # already pending; the job re-checks state when it runs
            self._queued.add(token)
            heapq.heappush(self._queue, (priority, next(self._seq), kind, tree))
            self._cv.notify()

    # -- worker loop --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cv:
                job = None
                while job is None:
                    if not self._running:
                        return
                    job = self._pop_runnable()
                    if job is None:
                        self._cv.wait()
                _, _, kind, tree = job
                token = (kind, id(tree))
                self._queued.discard(token)
                self._inflight.add(token)
            try:
                if kind == "flush":
                    self._run_flush(tree)
                else:
                    self._run_compaction(tree)
            except Exception as exc:
                # A failing job (injected crash, corrupt input, planner bug)
                # must not kill the worker: the pool would silently shrink
                # and maintenance would stall forever. Record and move on.
                self.job_failures += 1
                self.last_job_error = exc
            finally:
                with self._cv:
                    self._inflight.discard(token)
                    self._cv.notify_all()
                for listener in self._listeners:
                    listener()

    def _pop_runnable(self) -> Optional[tuple]:
        """Pop the best job whose (kind, tree) is not already in flight."""
        deferred = []
        job = None
        while self._queue:
            candidate = heapq.heappop(self._queue)
            token = (candidate[2], id(candidate[3]))
            if token in self._inflight:
                deferred.append(candidate)
                continue
            job = candidate
            break
        for item in deferred:
            heapq.heappush(self._queue, item)
        return job

    def _run_flush(self, tree: LSMTree) -> None:
        sealed = tree.claim_flush()
        while sealed is not None:
            run = tree.build_flush(sealed)
            tree.install_flush(sealed, run)
            tree.stats.flush_jobs += 1
            sealed = tree.claim_flush()
        if tree.compaction_needed():
            self.request_compaction(tree)

    def _run_compaction(self, tree: LSMTree) -> None:
        plan = tree.plan_compaction()
        if plan is None:
            return
        try:
            if self.rate_limiter is not None:
                self.rate_limiter.request(max(1, plan.bytes_in))
            merged = tree.execute_compaction(plan)
        except BaseException:
            tree.abandon_compaction(plan)
            raise
        tree.install_compaction(plan, merged)
        tree.stats.compaction_jobs += 1
        if tree.compaction_needed():
            self.request_compaction(tree)

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and every worker is idle.

        Returns:
            True when fully drained, False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._queue or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining)
            return True

    def close(self, drain: bool = True) -> None:
        """Stop the workers; optionally drain pending jobs first."""
        if drain:
            self.drain()
        with self._cv:
            self._running = False
            self._cv.notify_all()
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self.subcompaction_pool is not None:
            self.subcompaction_pool.shutdown(wait=True)

    @property
    def pending_jobs(self) -> int:
        with self._cv:
            return len(self._queue) + len(self._inflight)
