"""Write stalls: RocksDB-style admission control for the write path.

When flushes and compactions fall behind, letting writers run ahead only
deepens the debt: lookups slow down (more runs to probe) and the eventual
catch-up starves everything. The controller watches two gauges — the flush
backlog (sealed memtables + level-1 runs, RocksDB's ``level0_file_num``)
and the tree's compaction-debt fraction — and answers with three states:
``ok`` (admit), ``slowdown`` (delay each write), ``stop`` (block writers
until maintenance catches up).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.config import ServiceConfig

STATE_OK = "ok"
STATE_SLOWDOWN = "slowdown"
STATE_STOP = "stop"


class BackpressureController:
    """Gates writers on a tree's maintenance debt.

    Args:
        tree: any object with ``flush_backlog() -> int``,
            ``compaction_debt() -> float``, and a ``stats`` record (the
            :class:`~repro.core.lsm_tree.LSMTree` surface; tests pass
            stubs).
        config: stall thresholds (see :class:`ServiceConfig`).
        scheduler: when given, the controller registers a progress listener
            so hard-stalled writers wake as soon as a background job lands,
            and re-requests compaction while stopped.
    """

    def __init__(self, tree, config: "ServiceConfig", scheduler=None) -> None:
        self._tree = tree
        self._config = config
        self._scheduler = scheduler
        self._cv = threading.Condition()
        # Optional observability hooks: a Histogram recording each stalled
        # write's wall-clock delay, and an EventJournal receiving
        # stall_enter/stall_exit + state-transition events
        # (DBService.attach_observability sets both).
        self.stall_histogram = None
        self.journal = None
        self._last_state = STATE_OK
        if scheduler is not None:
            scheduler.add_listener(self._on_progress)

    # -- state --------------------------------------------------------------

    def state(self) -> str:
        """The current admission state, from the tree's live gauges."""
        config = self._config
        backlog = self._tree.flush_backlog()
        if backlog >= config.l0_stop_runs:
            return STATE_STOP
        debt = None
        if config.debt_stop is not None:
            debt = self._tree.compaction_debt()
            if debt >= config.debt_stop:
                return STATE_STOP
        if backlog >= config.l0_slowdown_runs:
            return STATE_SLOWDOWN
        if config.debt_slowdown is not None:
            if debt is None:
                debt = self._tree.compaction_debt()
            if debt >= config.debt_slowdown:
                return STATE_SLOWDOWN
        return STATE_OK

    # -- the writer-side gate ----------------------------------------------

    def _note_transition(self, state: str) -> None:
        """Journal ok/slowdown/stop edges (cheap: only fires on change)."""
        if state == self._last_state:
            return
        journal = self.journal
        if journal is not None:
            journal.emit("backpressure", previous=self._last_state, state=state,
                         backlog=self._tree.flush_backlog())
        self._last_state = state

    def gate(self) -> None:
        """Called per write *before* it enqueues; delays or blocks it."""
        state = self.state()
        self._note_transition(state)
        if state == STATE_OK:
            return
        journal = self.journal
        if journal is not None:
            journal.emit("stall_enter", state=state,
                         backlog=self._tree.flush_backlog())
        stats = self._tree.stats
        began = time.monotonic()
        if state == STATE_SLOWDOWN:
            stats.stall_slowdowns += 1
            time.sleep(self._config.slowdown_delay_s)
        else:
            stats.stall_stops += 1
            if self._scheduler is not None:
                # Make sure someone is actually working the debt down.
                self._scheduler.request_flush(self._tree)
                self._scheduler.request_compaction(self._tree)
            deadline = began + self._config.stop_timeout_s
            with self._cv:
                while self.state() == STATE_STOP:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break  # safety valve: never wedge a writer forever
                    self._cv.wait(remaining)
        stalled = time.monotonic() - began
        stats.stall_time_wall += stalled
        histogram = self.stall_histogram
        if histogram is not None:
            histogram.record(stalled)
        if journal is not None:
            journal.emit("stall_exit", state=state, stalled_s=stalled)

    def _on_progress(self) -> None:
        with self._cv:
            self._cv.notify_all()
