"""repro.service — the concurrent DB service layer.

Wraps :class:`~repro.core.lsm_tree.LSMTree` in the front-end production
LSM stores actually have: group-commit write batching, background flush
and compaction scheduling with I/O rate limiting, and RocksDB-style write
stalls. See ``docs/architecture.md`` ("Service layer") for the threading
model.
"""

from repro.service.backpressure import (
    STATE_OK,
    STATE_SLOWDOWN,
    STATE_STOP,
    BackpressureController,
)
from repro.service.batcher import BatcherStats, WriteBatcher, WriteOp
from repro.service.config import ServiceConfig
from repro.service.scheduler import CompactionScheduler, RateLimiter
from repro.service.service import DBService

__all__ = [
    "DBService",
    "ServiceConfig",
    "WriteBatcher",
    "WriteOp",
    "BatcherStats",
    "CompactionScheduler",
    "RateLimiter",
    "BackpressureController",
    "STATE_OK",
    "STATE_SLOWDOWN",
    "STATE_STOP",
]
